/**
 * @file
 * Coordinator: shards an experiment plan across worker subprocesses
 * and merges their JSON Lines row streams back into plan order.
 *
 * The plan is split into contiguous index ranges aligned to baseline
 * groups (a SRAM baseline plus the scenarios normalizing against it),
 * one range per worker, balanced by scenario count.  Each worker runs
 * `<workerBin> worker --plan F --range a:b [--store D]` with its rows
 * redirected to a private temp file; workers may share the (crash- and
 * concurrency-safe) sharded store, so nothing is simulated twice.
 *
 * Failure handling:
 *
 *  - A worker that exits nonzero or dies on a signal is retried on a
 *    fresh subprocess, up to `retries` times per range, with capped
 *    exponential backoff between attempts.
 *  - A worker whose row stream stops growing for `workerTimeoutSec`
 *    (workers flush per row) is presumed hung and SIGKILLed, then
 *    treated exactly like a crashed worker.  Slow-but-progressing
 *    workers never trip the deadline.
 *  - Before each retry the dead attempt's flushed output is SALVAGED:
 *    its complete, parseable prefix rows are kept and only the indices
 *    past the salvaged frontier are re-dispatched, so a crash at row k
 *    of a range costs only rows >= k.
 *  - A range that exhausts its retries does not abort the run: every
 *    other range still finishes, salvaged rows of the failed range are
 *    merged, and the coordinator exits nonzero with an exact report of
 *    the missing scenario indices (graceful degradation instead of
 *    all-or-nothing).
 *
 * When every range succeeds the temp files are concatenated in range
 * order — producing output byte-identical to a single-process
 * `sweep --plan F --jobs 1 --jsonl -` run over the same store state,
 * faults or no faults.
 */

#ifndef REFRINT_SERVICE_COORDINATOR_HH
#define REFRINT_SERVICE_COORDINATOR_HH

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace refrint
{

struct ExperimentPlan;

/** One worker assignment (possibly a salvage re-dispatch: begin is
 *  then the first index the previous attempts had NOT completed). */
struct WorkerTask
{
    std::size_t begin = 0;
    std::size_t end = 0;
    unsigned attempt = 0;    ///< 0 first try, 1.. the retries
    std::string outPath;     ///< where this attempt's rows go
};

/**
 * Launch one worker for @p task; returns its pid, or -1 on spawn
 * failure.  The default spawner fork+execs `workerBin worker ...`;
 * tests substitute a fork-only spawner that calls runWorkerRange()
 * directly in the child, exercising real multi-process semantics
 * without needing the CLI binary on disk.
 */
using WorkerSpawner = std::function<pid_t(const WorkerTask &)>;

struct CoordinatorOptions
{
    std::string planPath;  ///< JSON plan file handed to every worker
    std::string storeDir;  ///< shared sharded store; "" = none
    unsigned workers = 3;  ///< target worker count (>= 1)
    std::FILE *out = nullptr;  ///< merged JSONL (default stdout)
    std::string workerBin; ///< refrint_cli path for the default spawner
    WorkerSpawner spawner; ///< optional override (tests)

    unsigned retries = 1;  ///< extra attempts per range after the first
    double workerTimeoutSec = 0; ///< no-progress deadline; 0 disables
    double backoffBaseSec = 0.25; ///< first retry delay; doubles per
                                  ///< attempt, capped at backoffCapSec
    double backoffCapSec = 5.0;
};

/** What one coordinator run did — for callers and tests. */
struct CoordinatorStats
{
    std::size_t salvagedRows = 0;   ///< rows kept from dead attempts
    std::size_t retriesUsed = 0;    ///< respawns (incl. deadline kills)
    std::size_t deadlineKills = 0;  ///< workers SIGKILLed for no
                                    ///< progress
    std::vector<std::pair<std::size_t, std::size_t>> missing;
                                    ///< index ranges never completed
};

/**
 * Split [0, plan.size()) into at most @p workers contiguous ranges,
 * each starting on a baseline-group boundary, balanced by scenario
 * count.  Fewer ranges than workers when the plan has fewer groups.
 */
std::vector<std::pair<std::size_t, std::size_t>>
shardPlanRanges(const ExperimentPlan &plan, unsigned workers);

/**
 * Run the coordinator; 0 on success, 1 on failure (a range exhausted
 * its retries — the merged stream then lacks exactly the reported
 * missing indices — or a worker could not be spawned, or I/O failed).
 * @p stats (optional) receives salvage/retry/missing accounting.
 */
int runCoordinator(const CoordinatorOptions &opts,
                   CoordinatorStats *stats = nullptr);

} // namespace refrint

#endif // REFRINT_SERVICE_COORDINATOR_HH
