/**
 * @file
 * Coordinator: shards an experiment plan across worker subprocesses
 * and merges their JSON Lines row streams back into plan order.
 *
 * The plan is split into contiguous index ranges aligned to baseline
 * groups (a SRAM baseline plus the scenarios normalizing against it),
 * one range per worker, balanced by scenario count.  Each worker runs
 * `<workerBin> worker --plan F --range a:b [--store D]` with its rows
 * redirected to a private temp file; workers share the (crash- and
 * concurrency-safe) sharded store, so nothing is simulated twice.  A
 * worker that exits nonzero or dies on a signal is retried ONCE on a
 * fresh subprocess (rows it already committed to the store are reused,
 * not re-simulated); a second failure fails the whole run.  When every
 * range has succeeded the temp files are concatenated in range order —
 * producing output byte-identical to a single-process
 * `sweep --plan F --jobs 1 --jsonl -` run over the same store state.
 */

#ifndef REFRINT_SERVICE_COORDINATOR_HH
#define REFRINT_SERVICE_COORDINATOR_HH

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace refrint
{

struct ExperimentPlan;

/** One worker assignment. */
struct WorkerTask
{
    std::size_t begin = 0;
    std::size_t end = 0;
    unsigned attempt = 0;    ///< 0 first try, 1 the retry
    std::string outPath;     ///< where this attempt's rows go
};

/**
 * Launch one worker for @p task; returns its pid, or -1 on spawn
 * failure.  The default spawner fork+execs `workerBin worker ...`;
 * tests substitute a fork-only spawner that calls runWorkerRange()
 * directly in the child, exercising real multi-process semantics
 * without needing the CLI binary on disk.
 */
using WorkerSpawner = std::function<pid_t(const WorkerTask &)>;

struct CoordinatorOptions
{
    std::string planPath;  ///< JSON plan file handed to every worker
    std::string storeDir;  ///< shared sharded store; "" = none
    unsigned workers = 3;  ///< target worker count (>= 1)
    std::FILE *out = nullptr;  ///< merged JSONL (default stdout)
    std::string workerBin; ///< refrint_cli path for the default spawner
    WorkerSpawner spawner; ///< optional override (tests)
};

/**
 * Split [0, plan.size()) into at most @p workers contiguous ranges,
 * each starting on a baseline-group boundary, balanced by scenario
 * count.  Fewer ranges than workers when the plan has fewer groups.
 */
std::vector<std::pair<std::size_t, std::size_t>>
shardPlanRanges(const ExperimentPlan &plan, unsigned workers);

/** Run the coordinator; 0 on success, 1 on failure (a range failed
 *  twice, a worker could not be spawned, or I/O failed). */
int runCoordinator(const CoordinatorOptions &opts);

} // namespace refrint

#endif // REFRINT_SERVICE_COORDINATOR_HH
