/**
 * @file
 * ShardedStore: the experiment service's content-addressed result
 * store.
 *
 * A store is a directory:
 *
 *     store.json            manifest {"format","version","shards"}
 *     shard-000.rsl         framed append-only records (framing.hh)
 *     shard-001.rsl         ...
 *
 * Rows are addressed by their canonical ScenarioKey string; a key
 * lives in shard fnv64(key) % shards forever (the shard count is
 * fixed at creation and recorded in the manifest).  Each record's
 * payload is "key;row" with the row encoded by the same %.17g codec
 * the legacy cache uses (api/result_store.hh), so a migrated row is
 * byte-identical to a freshly simulated one.
 *
 * Concurrency model: any number of *processes* may append to the same
 * store concurrently — every insert is one O_APPEND write of one
 * framed record, which cannot interleave with other appends, and a
 * reader ignores anything that fails the frame check (see
 * framing.hh).  Duplicate keys are benign: append-only means a re-
 * simulated row simply appears twice, and readers keep the last
 * occurrence.  Within a process the store is mutex-guarded like the
 * legacy cache.
 */

#ifndef REFRINT_SERVICE_STORE_HH
#define REFRINT_SERVICE_STORE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/result_store.hh"

namespace refrint
{

class ShardedStore : public ResultStore
{
  public:
    static constexpr unsigned kDefaultShards = 8;

    /**
     * Open (or create) the store directory at @p dir.  A new store is
     * created with @p shards shard files (0 = kDefaultShards); an
     * existing store always uses its manifest's count, since the shard
     * function must stay stable for the directory's lifetime.  Fatal
     * (exit 1) on an unreadable manifest or uncreatable directory.
     */
    explicit ShardedStore(std::string dir, unsigned shards = 0);
    ~ShardedStore() override;

    ShardedStore(const ShardedStore &) = delete;
    ShardedStore &operator=(const ShardedStore &) = delete;

    bool lookup(const std::string &key, CacheRow &out) const override;

    /** Append one framed record to the key's shard; durable as soon as
     *  the write returns (no separate commit step). */
    void insert(const std::string &key, const CacheRow &c) override;

    /** fdatasync every shard touched since the last flush. */
    void flush() override;

    std::size_t rowCount() const override;

    unsigned shards() const { return shards_; }

    /** The stable shard index for @p key. */
    unsigned shardOf(const std::string &key) const;

    /** Torn/corrupt lines skipped while loading (observability). */
    std::size_t tornRecords() const { return torn_; }

    /** Shard file path (for tests and tooling). */
    std::string shardPath(unsigned shard) const;

  private:
    void loadShard(unsigned shard);

    std::string dir_;
    unsigned shards_ = 0;
    std::size_t torn_ = 0;
    mutable std::mutex mu_;
    std::map<std::string, CacheRow> rows_;
    std::vector<int> fds_;        ///< per-shard append fd (lazy)
    std::vector<char> dirty_;     ///< shard touched since last flush
};

/**
 * Import every row of a legacy single-file cache (api/run_cache.hh)
 * into @p store.  Returns the number of rows imported; fatal (exit 1)
 * when @p cachePath is missing or unreadable.  The legacy file is only
 * read, never modified.
 */
std::size_t migrateLegacyCache(const std::string &cachePath,
                               ShardedStore &store);

} // namespace refrint

#endif // REFRINT_SERVICE_STORE_HH
