/**
 * @file
 * ShardedStore: the experiment service's content-addressed result
 * store.
 *
 * A store is a directory:
 *
 *     store.json            manifest {"format","version","shards"}
 *     shard-000.rsl         framed append-only records (framing.hh)
 *     shard-001.rsl         ...
 *     shard-001.bad         quarantined corrupt records (scrub --repair)
 *
 * Rows are addressed by their canonical ScenarioKey string; a key
 * lives in shard fnv64(key) % shards forever (the shard count is
 * fixed at creation and recorded in the manifest).  Each record's
 * payload is "key;row" with the row encoded by the same %.17g codec
 * the legacy cache uses (api/result_store.hh), so a migrated row is
 * byte-identical to a freshly simulated one.
 *
 * Concurrency model: any number of *processes* may append to the same
 * store concurrently — every insert is one O_APPEND write of one
 * framed record, which cannot interleave with other appends, and a
 * reader ignores anything that fails the frame check (see
 * framing.hh).  Duplicate keys are benign: append-only means a re-
 * simulated row simply appears twice, and readers keep the last
 * occurrence.  Within a process the store is mutex-guarded like the
 * legacy cache.
 *
 * Durability policy:
 *  - The manifest is fsync'd at creation — a store directory that
 *    exists always has a readable manifest.
 *  - An append that fails, or writes fewer bytes than the record
 *    (ENOSPC, quota), is FATAL with the shard file and byte offset —
 *    never a silently absent row.  The torn bytes on disk are the
 *    documented torn-line case readers already skip and scrub repairs.
 *  - flush() fdatasyncs every shard touched since the last flush;
 *    syncEveryAppend makes each insert durable before it returns.
 */

#ifndef REFRINT_SERVICE_STORE_HH
#define REFRINT_SERVICE_STORE_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/result_store.hh"

namespace refrint
{

class ShardedStore : public ResultStore
{
  public:
    static constexpr unsigned kDefaultShards = 8;

    /**
     * Open (or create) the store directory at @p dir.  A new store is
     * created with @p shards shard files (0 = kDefaultShards); an
     * existing store always uses its manifest's count, since the shard
     * function must stay stable for the directory's lifetime.  Fatal
     * (exit 1) on an unreadable manifest or uncreatable directory.
     * @p syncEveryAppend fdatasyncs after each insert (durable before
     * the insert returns) instead of only at flush().
     */
    explicit ShardedStore(std::string dir, unsigned shards = 0,
                          bool syncEveryAppend = false);
    ~ShardedStore() override;

    ShardedStore(const ShardedStore &) = delete;
    ShardedStore &operator=(const ShardedStore &) = delete;

    bool lookup(const std::string &key, CacheRow &out) const override;

    /** Append one framed record to the key's shard.  Fatal (exit 1) on
     *  a failed or short append — see the durability policy above. */
    void insert(const std::string &key, const CacheRow &c) override;

    /** fdatasync every shard touched since the last flush. */
    void flush() override;

    std::size_t rowCount() const override;

    unsigned shards() const { return shards_; }

    /** The stable shard index for @p key. */
    unsigned shardOf(const std::string &key) const;

    /** Torn/corrupt lines skipped while loading (observability). */
    std::size_t tornRecords() const { return torn_; }

    /** Shard file path (for tests and tooling). */
    std::string shardPath(unsigned shard) const;

    /** Copy of every known row (last occurrence per key), for corpus
     *  walkers like `refrint validate`. */
    std::map<std::string, CacheRow> snapshot() const;

  private:
    void loadShard(unsigned shard);

    std::string dir_;
    unsigned shards_ = 0;
    bool syncEveryAppend_ = false;
    std::size_t torn_ = 0;
    std::size_t appends_ = 0; ///< appends this instance attempted
                              ///< (the store.* fault-point ordinal)
    mutable std::mutex mu_;
    std::map<std::string, CacheRow> rows_;
    std::vector<int> fds_;        ///< per-shard append fd (lazy)
    std::vector<char> dirty_;     ///< shard touched since last flush
};

/**
 * Outcome of scrubbing a store directory (`refrint cache scrub`).
 *
 * Damage is classified by position: invalid non-blank lines after a
 * shard's last frame-valid record are a *torn tail* (the expected
 * artifact of a crash mid-append — at most one line, at the end);
 * invalid lines before it are *mid-file corruption* (bit rot, manual
 * editing, a filesystem fault) which a crash can never produce.
 */
struct ScrubReport
{
    unsigned shardsScanned = 0;
    std::size_t committed = 0;   ///< frame-valid records seen
    std::size_t uniqueKeys = 0;  ///< distinct keys among them
    std::size_t tornTail = 0;    ///< invalid lines after the last
                                 ///< valid record of their shard
    std::size_t midFile = 0;     ///< invalid lines before it
    std::size_t duplicates = 0;  ///< same-key re-appends
    std::size_t quarantined = 0; ///< bad lines moved to .bad (--repair)
    std::size_t compacted = 0;   ///< duplicate records dropped (--repair)

    bool clean() const { return tornTail == 0 && midFile == 0; }
};

/**
 * Verify every record of every shard in @p dir against its framing
 * checksum, reporting torn tails vs. mid-file corruption per shard on
 * @p out (default stderr).  With @p repair, each damaged shard is
 * atomically rewritten with only its frame-valid records — duplicate
 * keys compacted to the last occurrence — and the damaged lines are
 * appended verbatim to `shard-NNN.bad` for post-mortem.  Fatal
 * (exit 1) on an unreadable store or a failed rewrite.  The store must
 * not be concurrently written while a --repair runs (scrub without
 * repair only reads).
 */
ScrubReport scrubStore(const std::string &dir, bool repair,
                       std::FILE *out = nullptr);

/**
 * Import every row of a legacy single-file cache (api/run_cache.hh)
 * into @p store.  Returns the number of rows imported; fatal (exit 1)
 * when @p cachePath is missing or unreadable.  The legacy file is only
 * read, never modified.
 */
std::size_t migrateLegacyCache(const std::string &cachePath,
                               ShardedStore &store);

} // namespace refrint

#endif // REFRINT_SERVICE_STORE_HH
