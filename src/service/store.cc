#include "service/store.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "api/json.hh"
#include "api/run_cache.hh"
#include "common/log.hh"
#include "service/framing.hh"

namespace refrint
{

namespace
{

constexpr int kStoreVersion = 1;

std::string
manifestPath(const std::string &dir)
{
    return dir + "/store.json";
}

/** Write @p data to @p fd in one write(2) call; retried only on EINTR
 *  (a partial write of an O_APPEND record would break the framing's
 *  atomicity contract, so it is reported rather than resumed). */
bool
writeWhole(int fd, const std::string &data)
{
    for (;;) {
        const ssize_t n = ::write(fd, data.data(), data.size());
        if (n == static_cast<ssize_t>(data.size()))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
}

} // namespace

ShardedStore::ShardedStore(std::string dir, unsigned shards)
    : dir_(std::move(dir))
{
    panicIf(dir_.empty(), "sharded store needs a directory");
    // Create the directory if needed (EEXIST is the common warm case).
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("cannot create store directory %s: %s", dir_.c_str(),
              std::strerror(errno));

    std::ifstream manifest(manifestPath(dir_));
    if (manifest) {
        std::stringstream ss;
        ss << manifest.rdbuf();
        JsonValue doc;
        std::string err;
        if (!JsonValue::parse(ss.str(), doc, err) || !doc.isObject())
            fatal("unreadable store manifest %s: %s",
                  manifestPath(dir_).c_str(), err.c_str());
        const JsonValue *fmt = doc.get("format");
        const JsonValue *ver = doc.get("version");
        const JsonValue *sh = doc.get("shards");
        if (fmt == nullptr || !fmt->isString() ||
            fmt->asString() != "refrint-store" || ver == nullptr ||
            !ver->isNumber() || ver->asNumber() != kStoreVersion ||
            sh == nullptr || !sh->isNumber() || sh->asNumber() < 1 ||
            sh->asNumber() > 4096)
            fatal("store manifest %s is not a readable refrint-store "
                  "v%d manifest",
                  manifestPath(dir_).c_str(), kStoreVersion);
        // The manifest always wins: the shard function must stay
        // stable for the directory's lifetime.
        shards_ = static_cast<unsigned>(sh->asNumber());
    } else {
        shards_ = shards == 0 ? kDefaultShards : shards;
        JsonValue doc = JsonValue::object();
        doc.set("format", JsonValue::string("refrint-store"));
        doc.set("version", JsonValue::number(kStoreVersion));
        doc.set("shards",
                JsonValue::number(static_cast<double>(shards_)));
        std::ofstream out(manifestPath(dir_), std::ios::trunc);
        if (!out)
            fatal("cannot write store manifest %s",
                  manifestPath(dir_).c_str());
        out << doc.dump(2) << "\n";
    }

    fds_.assign(shards_, -1);
    dirty_.assign(shards_, 0);
    for (unsigned s = 0; s < shards_; ++s)
        loadShard(s);
}

ShardedStore::~ShardedStore()
{
    for (const int fd : fds_)
        if (fd >= 0)
            ::close(fd);
}

std::string
ShardedStore::shardPath(unsigned shard) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%03u.rsl", shard);
    return dir_ + name;
}

unsigned
ShardedStore::shardOf(const std::string &key) const
{
    return static_cast<unsigned>(fnv64(key) % shards_);
}

void
ShardedStore::loadShard(unsigned shard)
{
    std::ifstream in(shardPath(shard), std::ios::binary);
    if (!in)
        return; // not written yet
    std::stringstream ss;
    ss << in.rdbuf();
    const ScanStats stats =
        scanRecords(ss.str(), [&](const std::string &payload) {
            const auto sep = payload.find(';');
            if (sep == std::string::npos)
                return;
            CacheRow c{};
            if (decodeCacheRow(payload.substr(sep + 1), c))
                rows_[payload.substr(0, sep)] = c; // last wins
        });
    if (stats.torn > 0) {
        torn_ += stats.torn;
        warn("store shard %s: ignored %zu torn/corrupt record(s), "
             "recovered %zu committed row(s)",
             shardPath(shard).c_str(), stats.torn, stats.committed);
    }
}

bool
ShardedStore::lookup(const std::string &key, CacheRow &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rows_.find(key);
    if (it == rows_.end())
        return false;
    out = it->second;
    return true;
}

void
ShardedStore::insert(const std::string &key, const CacheRow &c)
{
    const unsigned shard = shardOf(key);
    const std::string record = frameRecord(key + ";" + encodeCacheRow(c));
    std::lock_guard<std::mutex> lock(mu_);
    rows_[key] = c;
    if (fds_[shard] < 0) {
        fds_[shard] = ::open(shardPath(shard).c_str(),
                             O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                             0666);
        if (fds_[shard] < 0) {
            warn("cannot open store shard %s: %s",
                 shardPath(shard).c_str(), std::strerror(errno));
            return;
        }
    }
    if (!writeWhole(fds_[shard], record))
        warn("short/failed append to store shard %s: %s",
             shardPath(shard).c_str(), std::strerror(errno));
    else
        dirty_[shard] = 1;
}

void
ShardedStore::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (unsigned s = 0; s < shards_; ++s) {
        if (dirty_[s] && fds_[s] >= 0) {
            ::fdatasync(fds_[s]);
            dirty_[s] = 0;
        }
    }
}

std::size_t
ShardedStore::rowCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
}

std::size_t
migrateLegacyCache(const std::string &cachePath, ShardedStore &store)
{
    std::ifstream probe(cachePath);
    if (!probe)
        fatal("cannot read legacy cache file: %s", cachePath.c_str());
    probe.close();
    RunCache legacy(cachePath); // read-only import: never written back
    const auto rows = legacy.snapshot();
    for (const auto &[key, row] : rows)
        store.insert(key, row);
    store.flush();
    return rows.size();
}

} // namespace refrint
