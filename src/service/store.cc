#include "service/store.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "api/json.hh"
#include "api/run_cache.hh"
#include "common/log.hh"
#include "service/faults.hh"
#include "service/framing.hh"

namespace refrint
{

namespace
{

constexpr int kStoreVersion = 1;

std::string
manifestPath(const std::string &dir)
{
    return dir + "/store.json";
}

/** Parse an existing manifest's shard count; 0 when there is none,
 *  fatal when there is one but it is unreadable. */
unsigned
readManifestShards(const std::string &dir)
{
    std::ifstream manifest(manifestPath(dir));
    if (!manifest)
        return 0;
    std::stringstream ss;
    ss << manifest.rdbuf();
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(ss.str(), doc, err) || !doc.isObject())
        fatal("unreadable store manifest %s: %s",
              manifestPath(dir).c_str(), err.c_str());
    const JsonValue *fmt = doc.get("format");
    const JsonValue *ver = doc.get("version");
    const JsonValue *sh = doc.get("shards");
    if (fmt == nullptr || !fmt->isString() ||
        fmt->asString() != "refrint-store" || ver == nullptr ||
        !ver->isNumber() || ver->asNumber() != kStoreVersion ||
        sh == nullptr || !sh->isNumber() || sh->asNumber() < 1 ||
        sh->asNumber() > 4096)
        fatal("store manifest %s is not a readable refrint-store "
              "v%d manifest",
              manifestPath(dir).c_str(), kStoreVersion);
    return static_cast<unsigned>(sh->asNumber());
}

/** fsync @p dir so a just-renamed or just-created entry is durable;
 *  best-effort (some filesystems refuse directory fsync). */
void
syncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/** Write @p data to @p path whole, fsync'd, fatal on any failure —
 *  the durability contract for manifests and repaired shards. */
void
writeFileDurably(const std::string &path, const std::string &data)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        fatal("cannot write %s: %s", path.c_str(),
              std::strerror(errno));
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            fatal("short write to %s at offset %zu: %s", path.c_str(),
                  off, std::strerror(errno));
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0)
        fatal("cannot fsync %s: %s", path.c_str(),
              std::strerror(errno));
    ::close(fd);
}

/**
 * Append @p data to @p fd in one write(2) call, retried only on EINTR
 * (a resumed partial write of an O_APPEND record would break the
 * framing's atomicity contract).  A failed append, or a short one
 * (0 <= n < size: ENOSPC, quota), is FATAL with the file and offset —
 * a store that silently drops rows would poison every later warm run.
 * The torn bytes a short write leaves behind are the documented
 * torn-line case: readers skip them and `cache scrub` repairs them.
 */
void
appendRaw(int fd, const std::string &data, const std::string &path)
{
    for (;;) {
        const ssize_t n = ::write(fd, data.data(), data.size());
        if (n == static_cast<ssize_t>(data.size()))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        const off_t end = ::lseek(fd, 0, SEEK_END);
        if (n < 0)
            fatal("append to store shard %s failed at offset %lld: %s",
                  path.c_str(), static_cast<long long>(end),
                  std::strerror(errno));
        fatal("short append to store shard %s: wrote %lld of %zu "
              "bytes ending at offset %lld (disk full?); committed "
              "rows are intact, run 'cache scrub --repair'",
              path.c_str(), static_cast<long long>(n), data.size(),
              static_cast<long long>(end));
    }
}

} // namespace

ShardedStore::ShardedStore(std::string dir, unsigned shards,
                           bool syncEveryAppend)
    : dir_(std::move(dir)), syncEveryAppend_(syncEveryAppend)
{
    panicIf(dir_.empty(), "sharded store needs a directory");
    // Create the directory if needed (EEXIST is the common warm case).
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("cannot create store directory %s: %s", dir_.c_str(),
              std::strerror(errno));

    // The manifest always wins: the shard function must stay stable
    // for the directory's lifetime.
    shards_ = readManifestShards(dir_);
    if (shards_ == 0) {
        shards_ = shards == 0 ? kDefaultShards : shards;
        JsonValue doc = JsonValue::object();
        doc.set("format", JsonValue::string("refrint-store"));
        doc.set("version", JsonValue::number(kStoreVersion));
        doc.set("shards",
                JsonValue::number(static_cast<double>(shards_)));
        writeFileDurably(manifestPath(dir_), doc.dump(2) + "\n");
        syncDirectory(dir_);
    }

    fds_.assign(shards_, -1);
    dirty_.assign(shards_, 0);
    for (unsigned s = 0; s < shards_; ++s)
        loadShard(s);
}

ShardedStore::~ShardedStore()
{
    for (const int fd : fds_)
        if (fd >= 0)
            ::close(fd);
}

std::string
ShardedStore::shardPath(unsigned shard) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%03u.rsl", shard);
    return dir_ + name;
}

unsigned
ShardedStore::shardOf(const std::string &key) const
{
    return static_cast<unsigned>(fnv64(key) % shards_);
}

void
ShardedStore::loadShard(unsigned shard)
{
    std::ifstream in(shardPath(shard), std::ios::binary);
    if (!in)
        return; // not written yet
    std::stringstream ss;
    ss << in.rdbuf();
    const ScanStats stats =
        scanRecords(ss.str(), [&](const std::string &payload) {
            const auto sep = payload.find(';');
            if (sep == std::string::npos)
                return;
            CacheRow c{};
            if (decodeCacheRow(payload.substr(sep + 1), c))
                rows_[payload.substr(0, sep)] = c; // last wins
        });
    if (stats.torn > 0) {
        torn_ += stats.torn;
        warn("store shard %s: ignored %zu torn/corrupt record(s), "
             "recovered %zu committed row(s) — 'cache scrub --repair' "
             "quarantines the damage",
             shardPath(shard).c_str(), stats.torn, stats.committed);
    }
}

bool
ShardedStore::lookup(const std::string &key, CacheRow &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rows_.find(key);
    if (it == rows_.end())
        return false;
    out = it->second;
    return true;
}

void
ShardedStore::insert(const std::string &key, const CacheRow &c)
{
    const unsigned shard = shardOf(key);
    const std::string record = frameRecord(key + ";" + encodeCacheRow(c));
    std::lock_guard<std::mutex> lock(mu_);
    rows_[key] = c;
    if (fds_[shard] < 0) {
        fds_[shard] = ::open(shardPath(shard).c_str(),
                             O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                             0666);
        if (fds_[shard] < 0)
            fatal("cannot open store shard %s for append: %s",
                  shardPath(shard).c_str(), std::strerror(errno));
    }

    // Deterministic fault sites for the chaos harness: the ordinal is
    // this instance's append count, so a schedule names "the N-th
    // append this process performs".
    const std::uint64_t ordinal = appends_++;
    const FaultPlan &faults = FaultPlan::global();
    if (!faults.empty()) {
        if (faults.at("store.torn_write", ordinal)) {
            // Crash mid-write: half the record lands, then the process
            // dies — the canonical torn-line scenario.
            (void)!::write(fds_[shard], record.data(),
                           record.size() / 2);
            std::raise(SIGKILL);
        }
        if (faults.at("store.short_write", ordinal)) {
            // ENOSPC-style short write: half the record lands and the
            // append path must fail loudly.
            (void)!::write(fds_[shard], record.data(),
                           record.size() / 2);
            const off_t end = ::lseek(fds_[shard], 0, SEEK_END);
            fatal("short append to store shard %s: wrote %zu of %zu "
                  "bytes ending at offset %lld (disk full?); "
                  "committed rows are intact, run 'cache scrub "
                  "--repair'",
                  shardPath(shard).c_str(), record.size() / 2,
                  record.size(), static_cast<long long>(end));
        }
    }

    appendRaw(fds_[shard], record, shardPath(shard));
    if (syncEveryAppend_)
        ::fdatasync(fds_[shard]);
    else
        dirty_[shard] = 1;
}

void
ShardedStore::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (unsigned s = 0; s < shards_; ++s) {
        if (dirty_[s] && fds_[s] >= 0) {
            ::fdatasync(fds_[s]);
            dirty_[s] = 0;
        }
    }
}

std::size_t
ShardedStore::rowCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
}

std::map<std::string, CacheRow>
ShardedStore::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rows_;
}

// ---------------------------------------------------------------------
// Scrub & repair
// ---------------------------------------------------------------------

namespace
{

/** One shard's scan, classified for scrub. */
struct ShardScan
{
    std::vector<std::string> order;           ///< keys, first-seen order
    std::map<std::string, std::string> last;  ///< key -> last payload
    std::vector<std::string> badLines;        ///< frame-invalid lines
    std::size_t committed = 0;
    std::size_t tornTail = 0;
    std::size_t midFile = 0;
    std::size_t duplicates = 0;

    bool
    needsRepair() const
    {
        return tornTail > 0 || midFile > 0 || duplicates > 0;
    }
};

ShardScan
scanShardFile(const std::string &data)
{
    ShardScan scan;
    // First pass: find where the last frame-valid record ends, so
    // damage can be classified as torn tail (after it — what a crash
    // leaves) vs. mid-file corruption (before it — what a crash can
    // never produce).
    std::size_t lastValidEnd = 0;
    {
        std::size_t pos = 0;
        while (pos < data.size()) {
            auto nl = data.find('\n', pos);
            if (nl == std::string::npos)
                nl = data.size();
            if (nl > pos) {
                std::string payload;
                if (unframeRecord(data.substr(pos, nl - pos), payload))
                    lastValidEnd = nl;
            }
            pos = nl + 1;
        }
    }
    std::size_t pos = 0;
    while (pos < data.size()) {
        auto nl = data.find('\n', pos);
        if (nl == std::string::npos)
            nl = data.size();
        if (nl > pos) {
            const std::string line = data.substr(pos, nl - pos);
            std::string payload;
            if (unframeRecord(line, payload)) {
                ++scan.committed;
                const auto sep = payload.find(';');
                const std::string key =
                    sep == std::string::npos ? payload
                                             : payload.substr(0, sep);
                auto it = scan.last.find(key);
                if (it == scan.last.end()) {
                    scan.order.push_back(key);
                    scan.last.emplace(key, std::move(payload));
                } else {
                    ++scan.duplicates;
                    it->second = std::move(payload); // last wins
                }
            } else {
                scan.badLines.push_back(line);
                if (pos >= lastValidEnd)
                    ++scan.tornTail;
                else
                    ++scan.midFile;
            }
        }
        pos = nl + 1;
    }
    return scan;
}

} // namespace

ScrubReport
scrubStore(const std::string &dir, bool repair, std::FILE *out)
{
    if (out == nullptr)
        out = stderr;
    const unsigned shards = readManifestShards(dir);
    if (shards == 0)
        fatal("%s is not a refrint store (no store.json manifest)",
              dir.c_str());

    ScrubReport report;
    report.shardsScanned = shards;
    for (unsigned s = 0; s < shards; ++s) {
        char name[32];
        std::snprintf(name, sizeof(name), "/shard-%03u", s);
        const std::string path = dir + name + ".rsl";
        std::ifstream in(path, std::ios::binary);
        if (!in)
            continue; // never written
        std::stringstream ss;
        ss << in.rdbuf();
        in.close();
        const ShardScan scan = scanShardFile(ss.str());

        report.committed += scan.committed;
        report.uniqueKeys += scan.last.size();
        report.tornTail += scan.tornTail;
        report.midFile += scan.midFile;
        report.duplicates += scan.duplicates;

        if (scan.tornTail > 0 || scan.midFile > 0)
            std::fprintf(out,
                         "shard-%03u.rsl: %zu torn-tail line(s), %zu "
                         "mid-file corrupt line(s), %zu good "
                         "record(s)\n",
                         s, scan.tornTail, scan.midFile,
                         scan.committed);

        if (!repair || !scan.needsRepair())
            continue;

        // Quarantine the damaged lines, then atomically rewrite the
        // shard with only its frame-valid records, duplicates
        // compacted to the last occurrence.
        if (!scan.badLines.empty()) {
            std::ofstream bad(dir + name + ".bad",
                              std::ios::app | std::ios::binary);
            if (!bad)
                fatal("cannot write quarantine file %s.bad",
                      (dir + name).c_str());
            for (const std::string &line : scan.badLines)
                bad << line << "\n";
            bad.close();
            report.quarantined += scan.badLines.size();
        }
        std::string rebuilt;
        for (const std::string &key : scan.order)
            rebuilt += frameRecord(scan.last.at(key));
        const std::string tmp = path + ".tmp";
        writeFileDurably(tmp, rebuilt);
        if (::rename(tmp.c_str(), path.c_str()) != 0)
            fatal("cannot replace %s with its repaired copy: %s",
                  path.c_str(), std::strerror(errno));
        syncDirectory(dir);
        report.compacted += scan.duplicates;
        std::fprintf(out,
                     "shard-%03u.rsl: repaired — %zu line(s) "
                     "quarantined to shard-%03u.bad, %zu duplicate "
                     "record(s) compacted, %zu row(s) kept\n",
                     s, scan.badLines.size(), s, scan.duplicates,
                     scan.last.size());
    }
    return report;
}

std::size_t
migrateLegacyCache(const std::string &cachePath, ShardedStore &store)
{
    std::ifstream probe(cachePath);
    if (!probe)
        fatal("cannot read legacy cache file: %s", cachePath.c_str());
    probe.close();
    RunCache legacy(cachePath); // read-only import: never written back
    const auto rows = legacy.snapshot();
    for (const auto &[key, row] : rows)
        store.insert(key, row);
    store.flush();
    return rows.size();
}

} // namespace refrint
