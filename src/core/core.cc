#include "core/core.hh"

namespace refrint
{

Core::Core(CoreId id, Hierarchy &hier, EventQueue &eq,
           std::unique_ptr<CoreStream> stream, std::uint64_t targetRefs,
           std::uint32_t codeLines, std::uint64_t seed,
           std::function<void(CoreId)> onDone, StatGroup &stats)
    : id_(id),
      hier_(hier),
      eq_(eq),
      stream_(std::move(stream)),
      targetRefs_(targetRefs),
      codeLines_(codeLines == 0 ? 1 : codeLines),
      fetchPrng_(seed ^ 0x9e3779b97f4a7c15ULL, id * 2 + 1),
      onDone_(std::move(onDone))
{
    loads_ = &stats.counter("loads");
    stores_ = &stats.counter("stores");
    instrCtr_ = &stats.counter("instructions");
}

void
Core::start(Tick now)
{
    // Small per-core skew so the cores do not march in lockstep.
    eq_.schedule(now + 1 + id_ * 3, this, 0);
}

Tick
Core::issueFetch(Tick now, std::uint32_t instrCount)
{
    // One IL1 probe models the fetch of this reference's instruction
    // block; energy is charged for all 4-instruction fetch groups the
    // gap implies (the probe line is drawn with a hot-loop skew).
    const std::uint32_t blocks = (instrCount + 3) / 4;
    const Addr codeAddr =
        kCodeBase +
        static_cast<Addr>(fetchPrng_.skewed(codeLines_, 3.0)) * 64;
    return hier_.access(id_, codeAddr, AccessType::Fetch, now,
                        blocks == 0 ? 1 : blocks);
}

void
Core::fire(Tick now, std::uint64_t tag)
{
    // tag 1 = the issue tick of a reference stashed for its delay;
    // tag 0 = pull a fresh reference from the stream, and if it asks
    // for an idle period, stall until then rather than touching the
    // hierarchy at a future tick.
    MemRef ref;
    if (tag == 1) {
        ref = pending_;
    } else {
        ref = stream_->next(now);
        if (ref.delay > 0) {
            pending_ = ref;
            eq_.schedule(now + ref.delay, this, 1);
            return;
        }
    }
    const std::uint32_t instrCount = ref.gap + 1;

    const Tick tFetch = issueFetch(now, instrCount);
    const Tick tData = hier_.access(
        id_, ref.addr, ref.write ? AccessType::Store : AccessType::Load,
        now);
    const Tick completion = std::max(tFetch, tData);

    if (ref.write)
        stores_->inc();
    else
        loads_->inc();
    instrs_ += instrCount;
    instrCtr_->inc(instrCount);

    ++refsIssued_;
    if (refsIssued_ >= targetRefs_) {
        done_ = true;
        doneTick_ = completion;
        if (onDone_)
            onDone_(id_);
        return;
    }
    eq_.schedule(completion + ref.gap, this, 0);
}

} // namespace refrint
