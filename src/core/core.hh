/**
 * @file
 * Trace-driven core model.
 *
 * The paper's cores are dual-issue OOO MIPS32 (Table 5.1); what Refrint
 * actually depends on is the memory reference stream those cores emit
 * and the timing feedback (stalls on misses and on refresh-blocked
 * banks).  Each Core therefore replays a synthetic reference stream:
 * per reference it performs one instruction-fetch probe plus the data
 * access, then advances by the reference's compute gap (IPC 1 at the
 * paper's modest 1 GHz operating point).
 */

#ifndef REFRINT_CORE_CORE_HH
#define REFRINT_CORE_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "coherence/hierarchy.hh"
#include "common/prng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace refrint
{

/** One synthetic memory reference. */
struct MemRef
{
    Addr addr = 0;
    bool write = false;
    /** Compute cycles (= instructions at IPC 1) before the next ref. */
    std::uint32_t gap = 0;
    /** Idle ticks before this reference may issue (open-loop streams
     *  waiting for the next request arrival).  The core stalls — it
     *  never issues hierarchy accesses at a future tick. */
    Tick delay = 0;
};

/** An endless per-core reference stream (owned by its Core). */
class CoreStream
{
  public:
    virtual ~CoreStream() = default;
    virtual MemRef next() = 0;

    /** Timed variant: @p now is the tick at which the previous
     *  reference completed (request-serving streams derive per-request
     *  latency from it).  Default ignores the clock. */
    virtual MemRef
    next(Tick now)
    {
        (void)now;
        return next();
    }

    /** Completed per-request latencies in ticks, or null for streams
     *  with no request structure. */
    virtual const std::vector<Tick> *requestLatencies() const
    {
        return nullptr;
    }
};

class Core : public EventClient
{
  public:
    /** Base of the (shared, read-only) code region all cores fetch
     *  from; far above any data region the workloads generate. */
    static constexpr Addr kCodeBase = 0xC000'0000ULL;

    Core(CoreId id, Hierarchy &hier, EventQueue &eq,
         std::unique_ptr<CoreStream> stream, std::uint64_t targetRefs,
         std::uint32_t codeLines, std::uint64_t seed,
         std::function<void(CoreId)> onDone, StatGroup &stats);

    /** Issue the first reference at @p now. */
    void start(Tick now);

    void fire(Tick now, std::uint64_t tag) override;

    bool done() const { return done_; }
    Tick doneTick() const { return doneTick_; }
    std::uint64_t instructions() const { return instrs_; }
    std::uint64_t refsIssued() const { return refsIssued_; }
    const CoreStream &stream() const { return *stream_; }

  private:
    /** Fetch-path access for the current reference. */
    Tick issueFetch(Tick now, std::uint32_t instrCount);

    CoreId id_;
    Hierarchy &hier_;
    EventQueue &eq_;
    std::unique_ptr<CoreStream> stream_;
    std::uint64_t targetRefs_;
    std::uint32_t codeLines_;
    Prng fetchPrng_;
    std::function<void(CoreId)> onDone_;

    std::uint64_t refsIssued_ = 0;
    std::uint64_t instrs_ = 0;
    bool done_ = false;
    Tick doneTick_ = 0;
    MemRef pending_; ///< delayed reference awaiting its issue tick

    Counter *loads_;
    Counter *stores_;
    Counter *instrCtr_;
};

} // namespace refrint

#endif // REFRINT_CORE_CORE_HH
