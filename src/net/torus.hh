/**
 * @file
 * 4x4 torus on-chip network model (Table 5.1).
 *
 * The evaluated CMP places one core + one L3 bank at every vertex of a
 * k x k torus.  L3 bank homes are a static address hash.  We model the
 * network as a latency calculator (dimension-order routing over the
 * wrap-around mesh) plus message/hop counters that feed the energy model.
 * Link contention is not modelled; the paper's network is far from
 * saturation for these workloads and the refresh policies do not change
 * that materially.
 */

#ifndef REFRINT_NET_TORUS_HH
#define REFRINT_NET_TORUS_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace refrint
{

/** Message classes used for accounting and latency calculation. */
enum class MsgClass : std::uint8_t
{
    Control = 0, ///< requests, invalidations, acks (8B)
    Data,        ///< full line transfers (64B + header)
};

class TorusNetwork
{
  public:
    /**
     * @param dim          Torus dimension k (the paper uses 4).
     * @param hopLatency   Cycles per router+link traversal.
     * @param dataSerial   Extra serialization cycles for a data message.
     */
    TorusNetwork(std::uint32_t dim, Tick hopLatency, Tick dataSerial,
                 StatGroup &stats);

    std::uint32_t dim() const { return dim_; }
    std::uint32_t numNodes() const { return dim_ * dim_; }

    /** Minimal wrap-around hop distance along one dimension. */
    std::uint32_t
    axisHops(std::uint32_t a, std::uint32_t b) const
    {
        std::uint32_t d = a > b ? a - b : b - a;
        return d <= dim_ / 2 ? d : dim_ - d;
    }

    /** Dimension-order hop count between nodes @p src and @p dst.
     *  Table lookup: traverse() runs several times per memory access
     *  and the divide/modulo coordinate math is too slow there. */
    std::uint32_t
    hops(std::uint32_t src, std::uint32_t dst) const
    {
        panicIf(src >= numNodes() || dst >= numNodes(),
                "node out of range");
        return hopTable_[src * numNodes() + dst];
    }

    /**
     * Account for one message and return its traversal latency.
     * Zero-hop (local bank) messages still pay the network-interface
     * serialization for data but no hop latency.
     */
    Tick
    traverse(std::uint32_t src, std::uint32_t dst, MsgClass cls)
    {
        const std::uint32_t h = hops(src, dst);
        if (cls == MsgClass::Data)
            dataMsgs_->inc();
        else
            ctrlMsgs_->inc();
        hopsCtr_->inc(h);
        Tick lat = static_cast<Tick>(h) * hopLatency_;
        if (cls == MsgClass::Data)
            lat += dataSerial_;
        return lat;
    }

    /** Latency without accounting (lookahead paths, tests). */
    Tick latencyOf(std::uint32_t src, std::uint32_t dst,
                   MsgClass cls) const;

    std::uint64_t totalHops() const { return hopsCtr_->value(); }
    std::uint64_t totalMessages() const
    {
        return ctrlMsgs_->value() + dataMsgs_->value();
    }
    std::uint64_t dataMessages() const { return dataMsgs_->value(); }

  private:
    std::uint32_t dim_;
    Tick hopLatency_;
    Tick dataSerial_;

    /** Precomputed dimension-order hop counts, numNodes x numNodes. */
    std::vector<std::uint8_t> hopTable_;

    Counter *ctrlMsgs_;
    Counter *dataMsgs_;
    Counter *hopsCtr_;
};

} // namespace refrint

#endif // REFRINT_NET_TORUS_HH
