#include "net/torus.hh"

namespace refrint
{

TorusNetwork::TorusNetwork(std::uint32_t dim, Tick hopLatency,
                           Tick dataSerial, StatGroup &stats)
    : dim_(dim), hopLatency_(hopLatency), dataSerial_(dataSerial)
{
    panicIf(dim == 0, "torus dimension must be positive");
    ctrlMsgs_ = &stats.counter("ctrl_msgs");
    dataMsgs_ = &stats.counter("data_msgs");
    hopsCtr_ = &stats.counter("hops");
}

std::uint32_t
TorusNetwork::hops(std::uint32_t src, std::uint32_t dst) const
{
    panicIf(src >= numNodes() || dst >= numNodes(), "node out of range");
    const std::uint32_t sx = src % dim_, sy = src / dim_;
    const std::uint32_t dx = dst % dim_, dy = dst / dim_;
    return axisHops(sx, dx) + axisHops(sy, dy);
}

Tick
TorusNetwork::latencyOf(std::uint32_t src, std::uint32_t dst,
                        MsgClass cls) const
{
    const std::uint32_t h = hops(src, dst);
    Tick lat = static_cast<Tick>(h) * hopLatency_;
    if (cls == MsgClass::Data)
        lat += dataSerial_;
    return lat;
}

Tick
TorusNetwork::traverse(std::uint32_t src, std::uint32_t dst, MsgClass cls)
{
    const std::uint32_t h = hops(src, dst);
    if (cls == MsgClass::Data)
        dataMsgs_->inc();
    else
        ctrlMsgs_->inc();
    hopsCtr_->inc(h);
    Tick lat = static_cast<Tick>(h) * hopLatency_;
    if (cls == MsgClass::Data)
        lat += dataSerial_;
    return lat;
}

} // namespace refrint
