#include "net/torus.hh"

namespace refrint
{

TorusNetwork::TorusNetwork(std::uint32_t dim, Tick hopLatency,
                           Tick dataSerial, StatGroup &stats)
    : dim_(dim), hopLatency_(hopLatency), dataSerial_(dataSerial)
{
    panicIf(dim == 0, "torus dimension must be positive");
    const std::uint32_t n = numNodes();
    hopTable_.resize(static_cast<std::size_t>(n) * n);
    for (std::uint32_t src = 0; src < n; ++src) {
        const std::uint32_t sx = src % dim_, sy = src / dim_;
        for (std::uint32_t dst = 0; dst < n; ++dst) {
            const std::uint32_t dx = dst % dim_, dy = dst / dim_;
            hopTable_[src * n + dst] = static_cast<std::uint8_t>(
                axisHops(sx, dx) + axisHops(sy, dy));
        }
    }
    ctrlMsgs_ = &stats.counter("ctrl_msgs");
    dataMsgs_ = &stats.counter("data_msgs");
    hopsCtr_ = &stats.counter("hops");
}

Tick
TorusNetwork::latencyOf(std::uint32_t src, std::uint32_t dst,
                        MsgClass cls) const
{
    const std::uint32_t h = hops(src, dst);
    Tick lat = static_cast<Tick>(h) * hopLatency_;
    if (cls == MsgClass::Data)
        lat += dataSerial_;
    return lat;
}

} // namespace refrint
