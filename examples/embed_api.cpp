/**
 * @file
 * Embedding the experiment API: build a two-scenario plan by hand, run
 * it in-process through a Session, and observe the rows both through a
 * streaming sink and from the returned aggregate.
 *
 * This is the programmatic counterpart of `refrint_cli sweep`: the
 * four layers in ~50 lines of driving code.
 *
 *   Scenario        -> one fully-specified run point (a value)
 *   ExperimentPlan  -> scenarios + their normalization baselines
 *   ResultSink      -> streaming observer (here: a custom printer)
 *   Session         -> owns the cache/workers, executes the plan
 */

#include <cstdio>

#include "api/experiment_plan.hh"
#include "api/result_sink.hh"
#include "api/session.hh"

using namespace refrint;

namespace
{

/** A custom sink: one line per row as it streams in, plan order. */
class TickerSink : public ResultSink
{
  public:
    void
    consume(const ExperimentPlan &plan, std::size_t index,
            const RunResult &, const NormalizedResult *norm,
            bool simulated) override
    {
        std::printf("row %zu/%zu  %-22s %s", index + 1, plan.size(),
                    plan.scenarios[index].key().str().c_str(),
                    simulated ? "simulated" : "from cache");
        if (norm != nullptr)
            std::printf("  (mem %.3fx of SRAM)", norm->memEnergy);
        std::printf("\n");
    }
};

} // namespace

int
main()
{
    // The plan: an SRAM baseline plus the paper's best policy at a
    // 50 us retention, both on the default 16-core machine.  Scenarios
    // are plain values — fill in the axes you care about.
    ExperimentPlan plan;
    plan.name = "embed-demo";

    Scenario base;
    base.app = "lu";
    base.config = "SRAM";
    base.sim.refsPerCore = 30'000; // short demo run
    const int baseIdx = plan.addBaseline(base);

    Scenario best = base;
    best.config = "R.WB(32,32)";
    best.retentionUs = 50.0;
    plan.add(best, baseIdx);

    // Any plan serializes: this exact experiment could be saved with
    // plan.saveFile("demo.json") and replayed by
    // `refrint_cli sweep --plan demo.json`.
    std::printf("plan '%s': %zu scenarios, %zu bytes as JSON\n\n",
                plan.name.c_str(), plan.size(),
                plan.toJson().size());

    // Run it.  The Session owns the result cache (here: in-memory
    // only) and the worker pool; rows stream to the sinks in plan
    // order.
    TickerSink ticker;
    Session session(SessionOptions{/*cachePath=*/"", /*jobs=*/2});
    const SweepResult result = session.run(plan, {&ticker});

    // The aggregate is the same SweepResult the paper harness uses,
    // addressed by full scenario identity.
    const NormalizedResult *n =
        result.find("lu", 50.0, "R.WB(32,32)", /*machine=*/"");
    if (n == nullptr)
        return 1;
    std::printf("\nR.WB(32,32) @ 50 us on lu:\n");
    std::printf("  normalized mem energy: %.3f   (paper avg: 0.36)\n",
                n->memEnergy);
    std::printf("  normalized exec time : %.3f   (paper avg: 1.02)\n",
                n->time);
    return 0;
}
