/**
 * @file
 * Diagnostic deep-dive into a single run: full energy decomposition,
 * hit rates per level, refresh/coherence activity.  Handy both for
 * calibrating the energy model and for understanding why a policy wins
 * or loses on a workload.
 *
 * Usage: inspect_run [app] [policy|SRAM] [retention_us] [refsPerCore]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "harness/runner.hh"
#include "system/cmp_system.hh"
#include "workload/workload.hh"

int
main(int argc, char **argv)
{
    using namespace refrint;

    const char *appName = argc > 1 ? argv[1] : "lu";
    const std::string polName = argc > 2 ? argv[2] : "R.WB(32,32)";
    const double retUs = argc > 3 ? std::atof(argv[3]) : 50.0;
    const std::uint64_t refs =
        argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4]))
                 : 30'000;

    const Workload *app = findWorkload(appName);
    if (app == nullptr) {
        std::fprintf(stderr, "unknown app '%s'\n", appName);
        return 1;
    }
    HierarchyConfig cfg =
        polName == "SRAM"
            ? HierarchyConfig::paperSram()
            : HierarchyConfig::paperEdram(parsePolicy(polName),
                                          usToTicks(retUs));

    SimParams sim;
    sim.refsPerCore = refs;
    CmpSystem sys(cfg, *app, sim);
    sys.run();

    std::map<std::string, double> st;
    sys.hierarchy().dumpStats(st);
    const RunResult r = [&] {
        RunResult rr;
        rr.execTicks = sys.execTicks();
        rr.instructions = sys.totalInstructions();
        rr.counts = sys.hierarchy().counts();
        rr.energy = computeEnergy(EnergyParams::calibrated(), rr.counts,
                                  cfg, rr.execTicks, rr.instructions);
        return rr;
    }();

    const double cpr =
        static_cast<double>(r.execTicks) /
        static_cast<double>(refs); // cycles per (per-core) ref
    std::printf("== %s / %s @ %.0f us, %llu refs/core ==\n", appName,
                polName.c_str(), retUs,
                static_cast<unsigned long long>(refs));
    std::printf("exec: %.0f us (%.1f cycles/ref)   instrs: %llu\n",
                ticksToSeconds(r.execTicks) * 1e6, cpr,
                static_cast<unsigned long long>(r.instructions));

    auto rate = [&](const char *miss, const char *acc1,
                    const char *acc2) {
        const double m = st[miss];
        const double a = st[acc1] + (acc2 ? st[acc2] : 0.0);
        return a > 0 ? 100.0 * (1.0 - m / a) : 0.0;
    };
    std::printf("hit rates: dl1 %.1f%%  il1 %.1f%%  l2 %.1f%%  l3 "
                "%.1f%%\n",
                rate("dl1.misses", "dl1.reads", "dl1.writes"),
                rate("il1.misses", "il1.reads", nullptr),
                rate("l2.misses", "l2.reads", "l2.writes"),
                rate("l3.misses", "l3.reads", nullptr));
    std::printf("dram accesses: %.0f (reads %.0f writes %.0f)\n",
                st["dram.reads"] + st["dram.writes"], st["dram.reads"],
                st["dram.writes"]);
    std::printf("refreshes: l1 %.0f  l2 %.0f  l3 %.0f   wb %.0f  inval "
                "%.0f\n",
                st["refresh.l1.line_refreshes"],
                st["refresh.l2.line_refreshes"],
                st["refresh.l3.line_refreshes"],
                st["refresh.l3.refresh_writebacks"],
                st["refresh.l3.refresh_invalidations"]);
    std::printf("net: hops %.0f  data msgs %.0f\n", st["net.hops"],
                st["net.data_msgs"]);

    const EnergyBreakdown &e = r.energy;
    std::printf("\nenergy (J): mem %.4f = l1 %.4f + l2 %.4f + l3 %.4f + "
                "dram %.4f\n",
                e.memTotal(), e.l1, e.l2, e.l3, e.dram);
    std::printf("  on-chip: dyn %.4f  leak %.4f  refresh %.4f\n",
                e.dynamic, e.leakage, e.refresh);
    std::printf("  system: %.4f (core %.4f, net %.4f)\n",
                e.systemTotal(), e.core, e.net);
    std::printf("  fractions of mem: dyn %.2f leak %.2f refresh %.2f "
                "dram %.2f | l3/mem %.2f\n",
                e.dynamic / e.memTotal(), e.leakage / e.memTotal(),
                e.refresh / e.memTotal(), e.dram / e.memTotal(),
                e.l3 / e.memTotal());
    return 0;
}
