/**
 * @file
 * Thermal tour: what the thermal subsystem adds on top of the paper's
 * isothermal evaluation.
 *
 * The paper quotes eDRAM retention (50/100/200 us) *at operating
 * temperature*; retention roughly halves per 10 C of warming.  With the
 * thermal subsystem enabled, every eDRAM cache unit becomes a lumped-RC
 * node heated by its own activity, and the refresh engines re-read the
 * temperature-scaled retention every thermal epoch.  A cool die earns
 * longer retention (fewer refreshes); a hot die pays more — and the
 * Periodic baseline pays much more than Refrint, because Refrint only
 * refreshes what the sentries say is about to decay.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "thermal/thermal_model.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;

    // 1. The retention curve itself.
    const ThermalResponse resp;
    std::printf("# retention scale vs temperature (nominal at %.0f C)\n",
                resp.refTempC);
    for (double t : {45.0, 55.0, 65.0, 75.0, 85.0, 95.0})
        std::printf("  %5.1f C -> x%.2f\n", t, resp.factorAt(t));

    // 2. A single RC node: step response toward ambient + P*R.
    ThermalNode node(45.0, 40.0, 2.5e-6);
    std::printf("\n# RC node under 0.25 W (steady state %.1f C)\n",
                node.steadyStateC(0.25));
    for (int epoch = 1; epoch <= 5; ++epoch) {
        node.step(0.25, 50e-6); // 50 us steps
        std::printf("  after %3d us: %.2f C\n", epoch * 50,
                    node.tempC());
    }

    // 3. End to end: the same machine and workload at two ambients.
    const Workload *app = findWorkload("fft");
    SimParams sim;
    sim.refsPerCore = 20'000;
    const RunResult sram =
        runOnce(HierarchyConfig::paperSram(), *app, sim);

    std::printf("\n# %s @ 50 us nominal retention, cool vs hot die\n",
                app->name());
    std::printf("%-8s %-12s %8s %12s %10s %10s\n", "ambient", "policy",
                "peakC", "l3Refreshes", "memEnergy", "time");
    for (double ambient : {45.0, 85.0}) {
        for (const RefreshPolicy &pol :
             {RefreshPolicy::periodic(DataPolicy::All),
              RefreshPolicy::refrint(DataPolicy::WB, 32, 32)}) {
            const RunResult r =
                runOnce(HierarchyConfig::paperEdramThermal(
                            pol, usToTicks(50.0), ambient),
                        *app, sim);
            const NormalizedResult n = normalize(r, sram);
            std::printf("%-8.0f %-12s %8.1f %12llu %10.3f %10.3f\n",
                        ambient, pol.name().c_str(), r.maxTempC,
                        static_cast<unsigned long long>(
                            r.counts.l3Refreshes),
                        n.memEnergy, n.time);
        }
    }
    std::printf("\nPeriodic-All degrades with temperature; Refrint "
                "WB(32,32) barely moves.\n");
    return 0;
}
