/**
 * @file
 * Trace capture and replay: record a workload's reference stream to a
 * file, load it back, and show that replaying it reproduces the
 * original simulation exactly — then reuse the same trace against a
 * different refresh policy.
 *
 * This is the workflow for plugging external traces (e.g. converted
 * from a binary-instrumentation capture of a real SPLASH-2 run) into
 * the simulator: anything that can be written in the refrint-trace v1
 * text format can drive the full machine.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;

    const Workload *app = findWorkload("radix");
    SimParams sim;
    sim.refsPerCore = 20'000;

    // 1. Record the stream the generator would feed each of 16 cores.
    const Trace trace = recordTrace(*app, 16, sim.refsPerCore, sim.seed);
    const char *path = "radix.trc";
    saveTrace(trace, path);
    std::printf("recorded %llu refs to %s\n",
                static_cast<unsigned long long>(trace.totalRefs()), path);

    // 2. Replay it and compare with the generator-driven run.
    TraceWorkload replay(loadTrace(path), "radix.trc");
    const HierarchyConfig cfg = HierarchyConfig::paperEdram(
        RefreshPolicy::refrint(DataPolicy::WB, 32, 32), usToTicks(50.0));

    const RunResult direct = runOnce(cfg, *app, sim);
    const RunResult traced = runOnce(cfg, replay, sim);
    std::printf("direct run : %llu ticks, %.3f mJ memory energy\n",
                static_cast<unsigned long long>(direct.execTicks),
                direct.energy.memTotal() * 1e3);
    std::printf("trace run  : %llu ticks, %.3f mJ memory energy  (%s)\n",
                static_cast<unsigned long long>(traced.execTicks),
                traced.energy.memTotal() * 1e3,
                traced.execTicks == direct.execTicks ? "identical"
                                                     : "MISMATCH");

    // 3. The same trace drives any other machine configuration.
    const RunResult periodic = runOnce(
        HierarchyConfig::paperEdram(
            RefreshPolicy::periodic(DataPolicy::All), usToTicks(50.0)),
        replay, sim);
    std::printf("same trace under P.all: %.3f mJ (%.2fx the R.WB time)\n",
                periodic.energy.memTotal() * 1e3,
                static_cast<double>(periodic.execTicks) /
                    static_cast<double>(traced.execTicks));

    std::remove(path);
    return 0;
}
