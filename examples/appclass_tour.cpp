/**
 * @file
 * Application-class tour: demonstrates the paper's §3.3 model (Fig.
 * 3.1) — one representative application per class, showing how the
 * best data policy shifts with footprint and LLC visibility:
 *
 *   Class 1 (large footprint, high visibility)  -> WB with small (n,m)
 *   Class 2 (small footprint, high visibility)  -> WB with large (n,m)
 *   Class 3 (small footprint, low visibility)   -> Valid
 */

#include <cstdio>

#include "harness/runner.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;

    const char *reps[] = {"fft", "barnes", "blackscholes"};
    SimParams sim;
    sim.refsPerCore = 30'000;

    const RefreshPolicy policies[] = {
        RefreshPolicy::refrint(DataPolicy::Valid),
        RefreshPolicy::refrint(DataPolicy::WB, 4, 4),
        RefreshPolicy::refrint(DataPolicy::WB, 32, 32),
    };

    for (const char *name : reps) {
        const Workload *app = findWorkload(name);
        const RunResult sram =
            runOnce(HierarchyConfig::paperSram(), *app, sim);
        std::printf("\n== %s (paper Class %d) ==\n", app->name(),
                    app->paperClass());
        std::printf("%-14s %10s %10s %12s\n", "policy", "memEnergy",
                    "time", "refreshE/mem");
        for (const RefreshPolicy &pol : policies) {
            const RunResult r = runOnce(
                HierarchyConfig::paperEdram(pol, usToTicks(50.0)), *app,
                sim);
            const NormalizedResult n = normalize(r, sram);
            std::printf("%-14s %10.3f %10.3f %12.3f\n",
                        pol.name().c_str(), n.memEnergy, n.time,
                        n.refresh);
        }
    }
    std::printf("\nExpected: WB(4,4) wins on fft, WB(32,32) on barnes,"
                " valid on blackscholes.\n");
    return 0;
}
