/**
 * @file
 * Policy explorer: run every Table 5.4 policy on one application at one
 * retention time and rank them by normalized memory energy — the tool
 * you would use to pick a refresh policy for a new workload.
 *
 * Usage: policy_explorer [app] [retention_us]   (defaults: radix, 50)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workload/workload.hh"

int
main(int argc, char **argv)
{
    using namespace refrint;

    const char *appName = argc > 1 ? argv[1] : "radix";
    const double retUs = argc > 2 ? std::atof(argv[2]) : 50.0;
    const Workload *app = findWorkload(appName);
    if (app == nullptr) {
        std::fprintf(stderr, "unknown app '%s'; options:\n", appName);
        for (const Workload *w : paperWorkloads())
            std::fprintf(stderr, "  %s\n", w->name());
        return 1;
    }

    SimParams sim;
    sim.refsPerCore = 30'000;

    const RunResult sram =
        runOnce(HierarchyConfig::paperSram(), *app, sim);

    struct Row
    {
        NormalizedResult n;
    };
    std::vector<Row> rows;
    for (const RefreshPolicy &pol : paperPolicySweep()) {
        const RunResult r = runOnce(
            HierarchyConfig::paperEdram(pol, usToTicks(retUs)), *app,
            sim);
        rows.push_back({normalize(r, sram)});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.n.memEnergy < b.n.memEnergy;
    });

    std::printf("# %s @ %.0f us — policies ranked by normalized memory "
                "energy (SRAM = 1.0)\n",
                app->name(), retUs);
    std::printf("%-14s %10s %10s %10s\n", "policy", "memEnergy",
                "sysEnergy", "time");
    for (const Row &r : rows) {
        std::printf("%-14s %10.3f %10.3f %10.3f\n", r.n.config.c_str(),
                    r.n.memEnergy, r.n.sysEnergy, r.n.time);
    }
    return 0;
}
