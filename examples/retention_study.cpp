/**
 * @file
 * Retention study: how refresh energy and the Periodic-vs-Refrint gap
 * shrink as eDRAM cell retention grows (the paper's 50/100/200 us
 * sweep, motivated by the exponential temperature dependence of
 * retention, §5).
 */

#include <cstdio>

#include "harness/runner.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;

    const Workload *app = findWorkload("streamcluster");
    SimParams sim;
    sim.refsPerCore = 30'000;

    const RunResult sram =
        runOnce(HierarchyConfig::paperSram(), *app, sim);

    std::printf("# %s: P.valid vs R.valid across retention times\n",
                app->name());
    std::printf("%-10s %-10s %12s %10s %10s\n", "retention", "policy",
                "l3Refreshes", "memEnergy", "time");
    for (double retUs : {50.0, 100.0, 200.0}) {
        for (TimePolicy tp : {TimePolicy::Periodic, TimePolicy::Refrint}) {
            RefreshPolicy pol;
            pol.time = tp;
            pol.data = DataPolicy::Valid;
            const RunResult r = runOnce(
                HierarchyConfig::paperEdram(pol, usToTicks(retUs)),
                *app, sim);
            const NormalizedResult n = normalize(r, sram);
            std::printf("%-10.0f %-10s %12llu %10.3f %10.3f\n", retUs,
                        pol.name().c_str(),
                        static_cast<unsigned long long>(
                            r.counts.l3Refreshes),
                        n.memEnergy, n.time);
        }
    }
    return 0;
}
