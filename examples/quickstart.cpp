/**
 * @file
 * Quickstart: build the paper's 16-core machine, run one workload on
 * the SRAM baseline and on eDRAM with Refrint WB(32,32), and print the
 * energy/time comparison.
 *
 * This exercises the whole public API in ~40 lines:
 *   HierarchyConfig  -> the machine (Table 5.1)
 *   RefreshPolicy    -> what/when to refresh (Table 3.1)
 *   runOnce()        -> one simulation
 *   normalize()      -> the paper's normalized metrics
 */

#include <cstdio>

#include "harness/runner.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;

    // The workload: the paper's LU profile (Class 2: small footprint,
    // high sharing).  Swap for any name in Table 5.3.
    const Workload *app = findWorkload("lu");

    SimParams sim;
    sim.refsPerCore = 30'000; // short demo run

    // 1) Full-SRAM baseline.
    const RunResult sram =
        runOnce(HierarchyConfig::paperSram(), *app, sim);

    // 2) Full-eDRAM with the paper's best policy at 50 us retention.
    const RefreshPolicy best = RefreshPolicy::refrint(DataPolicy::WB,
                                                      32, 32);
    const RunResult edram = runOnce(
        HierarchyConfig::paperEdram(best, usToTicks(50.0)), *app, sim);

    const NormalizedResult n = normalize(edram, sram);

    std::printf("workload            : %s\n", app->name());
    std::printf("policy              : %s @ 50 us retention\n",
                best.name().c_str());
    std::printf("SRAM   memory energy: %.4f J  (exec %.0f us)\n",
                sram.energy.memTotal(),
                ticksToSeconds(sram.execTicks) * 1e6);
    std::printf("eDRAM  memory energy: %.4f J  (exec %.0f us)\n",
                edram.energy.memTotal(),
                ticksToSeconds(edram.execTicks) * 1e6);
    std::printf("normalized mem energy: %.3f   (paper avg: 0.36)\n",
                n.memEnergy);
    std::printf("normalized exec time : %.3f   (paper avg: 1.02)\n",
                n.time);
    std::printf("L3 line refreshes    : %llu\n",
                static_cast<unsigned long long>(
                    edram.counts.l3Refreshes));
    return 0;
}
