/**
 * @file
 * Thermal scenario bench: sweeps the ambient-temperature axis for the
 * headline policies and reports how the refresh/energy trade-off moves
 * with die temperature.  Shares the sweep result cache (thermal rows
 * are ambient-keyed), honours REFRINT_REFS / REFRINT_APPS /
 * REFRINT_JOBS, and with --json PATH emits a machine-readable perf
 * snapshot (wall time, simulations executed, rows produced) so CI can
 * track the thermal sweep's cost over time.
 */

#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace refrint;

    const char *jsonPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    SweepSpec spec;
    spec.apps = {findWorkload("fft")};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::Valid),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.ambients = {45.0, 65.0, 85.0};
    spec.sim.refsPerCore = bench::defaultRefs();

    const auto t0 = std::chrono::steady_clock::now();
    const SweepResult s = runSweep(std::move(spec));
    const double wallSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::printf("# bench_thermal — ambient sweep @ 50 us nominal "
                "retention (normalized to full-SRAM)\n");
    std::printf("%-8s %-12s %8s %9s %9s %9s\n", "ambient", "policy",
                "peakC", "refresh", "mem", "time");
    double hottest = 0;
    for (const NormalizedResult &n : s.normalized) {
        hottest = std::max(hottest, n.maxTempC);
        std::printf("%-8.1f %-12s %8.1f %9.4f %9.4f %9.4f\n", n.ambientC,
                    n.config.c_str(), n.maxTempC, n.refresh, n.memEnergy,
                    n.time);
    }
    std::printf("wall %.3f s, %zu simulations (%zu rows)\n", wallSec,
                s.simulations, s.normalized.size());

    if (jsonPath != nullptr) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath);
            return 1;
        }
        out << "{\n"
            << "  \"bench\": \"thermal\",\n"
            << "  \"wall_s\": " << wallSec << ",\n"
            << "  \"simulations\": " << s.simulations << ",\n"
            << "  \"rows\": " << s.normalized.size() << ",\n"
            << "  \"refs_per_core\": " << bench::defaultRefs() << ",\n"
            << "  \"max_temp_c\": " << hottest << "\n"
            << "}\n";
    }
    return 0;
}
