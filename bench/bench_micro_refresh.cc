/**
 * @file
 * Microbenchmarks of the refresh machinery itself (google-benchmark):
 * per-policy refresh/write-back/invalidation counts on analytically
 * simple workloads, and the host-side throughput of the sentry-heap
 * engine and the hierarchy walk.
 */

#include <benchmark/benchmark.h>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workload/micro.hh"

namespace
{

using namespace refrint;

MachineConfig
tinyEdram(const RefreshPolicy &pol)
{
    MachineConfig c = MachineConfig::paper(4);
    c.il1().geom = CacheGeometry{2 * 1024, 2, 64, 1};
    c.dl1().geom = CacheGeometry{2 * 1024, 4, 64, 1};
    c.l2().geom = CacheGeometry{8 * 1024, 8, 64, 2};
    c.llc().geom = CacheGeometry{32 * 1024, 8, 64, 4, 2};
    c.setLlcPolicy(pol);
    c.retention = RetentionParams{usToTicks(5.0), kTickNever, {}, {}};
    return c;
}

/** Refresh activity per policy on a uniform workload. */
void
BM_PolicyRefreshCounts(benchmark::State &state)
{
    const auto policies = paperPolicySweep();
    const RefreshPolicy pol =
        policies[static_cast<std::size_t>(state.range(0))];
    state.SetLabel(pol.name());
    UniformWorkload app(16 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 4000;
    for (auto _ : state) {
        RunResult r = runOnce(tinyEdram(pol), app, sim);
        state.counters["line_refreshes"] = static_cast<double>(
            r.counts.l1Refreshes + r.counts.l2Refreshes +
            r.counts.l3Refreshes);
        state.counters["refresh_wbs"] =
            static_cast<double>(r.counts.refreshWritebacks);
        state.counters["refresh_invals"] =
            static_cast<double>(r.counts.refreshInvalidations);
        state.counters["dram_accesses"] =
            static_cast<double>(r.counts.dramAccesses);
        benchmark::DoNotOptimize(r.execTicks);
    }
}
BENCHMARK(BM_PolicyRefreshCounts)->DenseRange(0, 13)->Unit(
    benchmark::kMillisecond);

/** Host throughput of the full simulation loop (refs/second). */
void
BM_SimulatorThroughput(benchmark::State &state)
{
    UniformWorkload app(16 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = static_cast<std::uint64_t>(state.range(0));
    const HierarchyConfig cfg =
        tinyEdram(RefreshPolicy::refrint(DataPolicy::WB, 8, 8));
    std::uint64_t refs = 0;
    for (auto _ : state) {
        RunResult r = runOnce(cfg, app, sim);
        refs += sim.refsPerCore * cfg.numCores;
        benchmark::DoNotOptimize(r.execTicks);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_SimulatorThroughput)->Arg(2000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
