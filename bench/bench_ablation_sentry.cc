/**
 * @file
 * Ablation (§4.1): the Sentry-bit margin.  The paper conservatively
 * sizes the sentry lead at one cycle per line in the cache (16 us for a
 * 16K-line bank at 50 us retention — a 32% loss of refresh interval)
 * and argues post-silicon calibration could shrink it.  This bench
 * sweeps the margin and reports refresh energy and counts, quantifying
 * what a better bound would buy.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;
    const Workload *app = findWorkload("lu");
    const RefreshPolicy pol = RefreshPolicy::refrint(DataPolicy::Valid);

    SimParams sim;
    sim.refsPerCore = 40'000;

    std::printf("# Ablation: sentry margin vs refresh activity "
                "(R.valid, lu, 50 us retention)\n");
    std::printf("%-14s %16s %14s %12s\n", "margin", "sentryRetention",
                "l3_refreshes", "memE(J)");
    // Margins from the paper's conservative bound (16384 lines => 16 us)
    // down to a 64-line bound a calibrated process could justify.
    for (Tick margin : {Tick{16384}, Tick{8192}, Tick{4096}, Tick{1024},
                        Tick{256}, Tick{64}}) {
        HierarchyConfig cfg =
            HierarchyConfig::paperEdram(pol, usToTicks(50.0));
        cfg.retention.sentryMargin = margin;
        RunResult r = runOnce(cfg, *app, sim);
        std::printf("%-14llu %16llu %14llu %12.5f\n",
                    static_cast<unsigned long long>(margin),
                    static_cast<unsigned long long>(usToTicks(50.0) -
                                                    margin),
                    static_cast<unsigned long long>(
                        r.counts.l3Refreshes),
                    r.energy.memTotal());
    }
    return 0;
}
