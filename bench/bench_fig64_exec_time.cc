/**
 * @file
 * Reproduces Fig. 6.4: normalized execution time for Class 1
 * applications and for all applications.
 */

#include "bench_common.hh"

int
main()
{
    using namespace refrint;
    const SweepResult s = bench::paperSweep();
    for (int cls : {1, 0})
        printFig64(s, cls);
    return 0;
}
