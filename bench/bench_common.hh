/**
 * @file
 * Shared setup for the figure-reproduction benches: build the paper's
 * sweep spec (honouring REFRINT_REFS / REFRINT_APPS / REFRINT_CACHE
 * environment overrides) and run-or-load the shared result cache.
 */

#ifndef REFRINT_BENCH_BENCH_COMMON_HH
#define REFRINT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>

#include "common/env.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

namespace refrint::bench
{

/** Default refs/core for the figure benches (overridable via env). */
inline std::uint64_t
defaultRefs()
{
    return envU64("REFRINT_REFS", 120'000);
}

/** Run (or load) the paper sweep shared by the figure benches.
 *  Parallelized across $REFRINT_JOBS worker threads when set. */
inline SweepResult
paperSweep()
{
    SweepSpec spec;
    spec.sim.refsPerCore = defaultRefs();
    return runSweep(std::move(spec));
}

} // namespace refrint::bench

#endif // REFRINT_BENCH_BENCH_COMMON_HH
