/**
 * @file
 * Shared setup for the figure-reproduction benches: build the paper's
 * sweep spec (honouring REFRINT_REFS / REFRINT_APPS / REFRINT_CACHE
 * environment overrides) and run-or-load the shared result cache.
 */

#ifndef REFRINT_BENCH_BENCH_COMMON_HH
#define REFRINT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>

#include "harness/report.hh"
#include "harness/sweep.hh"

namespace refrint::bench
{

/** Default refs/core for the figure benches (overridable via env). */
inline std::uint64_t
defaultRefs()
{
    if (const char *r = std::getenv("REFRINT_REFS"))
        return static_cast<std::uint64_t>(std::atoll(r));
    return 120'000;
}

/** Run (or load) the paper sweep shared by the figure benches. */
inline SweepResult
paperSweep()
{
    SweepSpec spec;
    spec.sim.refsPerCore = defaultRefs();
    return runSweep(std::move(spec));
}

} // namespace refrint::bench

#endif // REFRINT_BENCH_BENCH_COMMON_HH
