/**
 * @file
 * Ablation (§5): interrupt-wire grouping of sentry bits.  Grouping k
 * sentries onto one interrupt wire shrinks the priority encoder (1024
 * inputs max in the paper) but forces the whole group to be serviced
 * when its earliest sentry fires, refreshing some lines early.  This
 * bench sweeps the L3 group size and reports the extra refreshes paid
 * per wire saved.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace refrint;
    const Workload *app = findWorkload("lu");
    const RefreshPolicy pol = RefreshPolicy::refrint(DataPolicy::Valid);

    SimParams sim;
    sim.refsPerCore = 40'000;

    std::printf("# Ablation: sentry group size (encoder inputs) vs "
                "refresh energy (R.valid, lu, 50 us)\n");
    std::printf("%-10s %16s %14s %12s\n", "groupSize", "encoderInputs",
                "l3_refreshes", "memE(J)");
    for (std::uint32_t g : {1u, 4u, 16u, 64u, 256u}) {
        HierarchyConfig cfg =
            HierarchyConfig::paperEdram(pol, usToTicks(50.0));
        cfg.llc().engine.sentryGroupSize = g;
        RunResult r = runOnce(cfg, *app, sim);
        const std::uint32_t inputs =
            cfg.llc().geom.numLines() / g;
        std::printf("%-10u %16u %14llu %12.5f\n", g, inputs,
                    static_cast<unsigned long long>(
                        r.counts.l3Refreshes),
                    r.energy.memTotal());
    }
    return 0;
}
