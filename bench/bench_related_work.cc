/**
 * @file
 * Related-work shoot-out (paper §7): Refrint against the alternative
 * refresh/leakage schemes the paper discusses —
 *
 *   SRAM           full-SRAM baseline (normalization target)
 *   SRAM+decay     cache decay at L2/L3 (Kaxiras et al.)
 *   P.all          naive periodic eDRAM refresh
 *   P.all+SECDED   periodic refresh with ECC-extended retention
 *   P.all+HiECC    periodic refresh with a strong code
 *   S.valid        SmartRefresh timeout counters (Ghosh & Lee)
 *   R.WB(32,32)    Refrint's best policy (§6)
 *
 * One representative application per class, 50 us base retention.
 * Rows: normalized memory energy, refresh fraction, and execution time.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "related/ecc.hh"

namespace
{

using namespace refrint;

struct Contender
{
    std::string label;
    HierarchyConfig cfg;
    EnergyParams energy = EnergyParams::calibrated();
};

std::vector<Contender>
contenders(Tick retention)
{
    std::vector<Contender> v;
    v.push_back({"SRAM", HierarchyConfig::paperSram()});
    v.push_back({"SRAM+decay",
                 HierarchyConfig::paperSramDecay(usToTicks(100.0))});
    v.push_back({"P.all", HierarchyConfig::paperEdram(
                              RefreshPolicy::periodic(DataPolicy::All),
                              retention)});
    for (EccScheme s : {EccScheme::Secded, EccScheme::Strong}) {
        Contender c{std::string("P.all+") + eccSchemeName(s),
                    HierarchyConfig::paperEdram(
                        RefreshPolicy::periodic(DataPolicy::All),
                        retention)};
        applyEcc(s, c.cfg, c.energy);
        v.push_back(std::move(c));
    }
    v.push_back({"S.valid",
                 HierarchyConfig::paperEdram(
                     RefreshPolicy{TimePolicy::SmartRefresh,
                                   DataPolicy::Valid, 0, 0},
                     retention)});
    v.push_back({"R.WB(32,32)",
                 HierarchyConfig::paperEdram(
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32),
                     retention)});
    return v;
}

} // namespace

int
main()
{
    using namespace refrint;
    const Tick retention = usToTicks(50.0);
    SimParams sim;
    sim.refsPerCore = bench::defaultRefs();

    // One representative per class (Table 6.1).
    const std::vector<std::string> appNames = {"fft", "barnes",
                                               "blackscholes"};

    std::printf("# Related-work comparison @ %.0f us retention, "
                "%llu refs/core\n",
                50.0, static_cast<unsigned long long>(sim.refsPerCore));
    for (const std::string &appName : appNames) {
        const Workload *app = findWorkload(appName);
        if (app == nullptr)
            continue;

        const RunResult base =
            runOnce(HierarchyConfig::paperSram(), *app, sim);

        std::printf("\n## %s (class %d)\n", app->name(),
                    app->paperClass());
        std::printf("%-14s %10s %10s %10s\n", "scheme", "memEnergy",
                    "refresh", "time");
        for (const Contender &c : contenders(retention)) {
            const RunResult r = runOnce(c.cfg, *app, sim, c.energy);
            const NormalizedResult n = normalize(r, base);
            std::printf("%-14s %10.3f %10.3f %10.3f\n", c.label.c_str(),
                        n.memEnergy, n.refresh, n.time);
        }
    }
    return 0;
}
