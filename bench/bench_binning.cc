/**
 * @file
 * Reproduces Table 6.1: the application binning into the three classes
 * of Fig. 3.1, from measured footprint and LLC visibility.
 */

#include "harness/report.hh"

int
main()
{
    refrint::printBinning();
    return 0;
}
