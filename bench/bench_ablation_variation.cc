/**
 * @file
 * Ablation: process variation in the eDRAM retention time (§4.1).
 *
 * The paper's evaluation assumes uniform retention; §4.1 notes that
 * real arrays vary and that a profiled bound Delta on simultaneous
 * sentry firings could shrink the sentry margin.  This bench quantifies
 * the other half of that argument: as the per-line retention spread
 * grows, a Periodic controller (no per-line knowledge) must cycle the
 * whole cache at the weakest line's period, while Refrint's sentry bits
 * track each line individually — so the refresh-energy gap between the
 * two *widens* with sigma.
 *
 * Output: one row per sigma with normalized memory energy and the
 * refresh fraction for P.valid and R.valid at 50 us nominal retention.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

int
main()
{
    using namespace refrint;
    SimParams sim;
    sim.refsPerCore = bench::defaultRefs();
    const Workload *app = findWorkload("fft");
    if (app == nullptr)
        return 1;

    const RunResult base = runOnce(HierarchyConfig::paperSram(), *app, sim);

    std::printf("# Variation ablation: fft, 50 us nominal retention, "
                "floor 70%%\n");
    std::printf("%-8s %12s %12s %12s %12s\n", "sigma", "P.valid:mem",
                "P.valid:ref", "R.valid:mem", "R.valid:ref");

    for (double sigma : {0.0, 0.02, 0.05, 0.08, 0.12}) {
        double mem[2], ref[2];
        const RefreshPolicy pols[2] = {
            RefreshPolicy::periodic(DataPolicy::Valid),
            RefreshPolicy::refrint(DataPolicy::Valid)};
        for (int i = 0; i < 2; ++i) {
            HierarchyConfig cfg = HierarchyConfig::paperEdram(
                pols[i], usToTicks(50.0));
            cfg.retention.variation.enabled = sigma > 0.0;
            cfg.retention.variation.sigma = sigma;
            cfg.retention.variation.minFactor = 0.70;
            const RunResult r = runOnce(cfg, *app, sim);
            const NormalizedResult n = normalize(r, base);
            mem[i] = n.memEnergy;
            ref[i] = n.refresh;
        }
        std::printf("%-8.2f %12.3f %12.3f %12.3f %12.3f\n", sigma, mem[0],
                    ref[0], mem[1], ref[1]);
    }
    return 0;
}
