/**
 * @file
 * Event-kernel and cache-probe microbenchmark, plus an optional
 * wall-time snapshot of the headline sweep.
 *
 * Measures the two inner loops everything else in the reproduction sits
 * on:
 *
 *  - events/sec: EventQueue schedule+dispatch throughput with a
 *    core-like population of self-rescheduling clients, a band of
 *    far-future deadlines, and cancellable-handle churn — the same mix
 *    a simulation run produces.
 *
 *  - lookups/sec: CacheArray probe throughput (lookup + LRU touch with
 *    a miss/install mix) on the paper's L3-bank geometry with set
 *    hashing enabled.
 *
 * The event kernel is measured along a cores-scaling curve (4..64
 * clients-population points); the probe benchmark at the default and
 * the 32-core machine's footprint.  Peak RSS (VmHWM) is snapshotted
 * after the kernel benches as a memory-regression tripwire.
 *
 * Usage:
 *   bench_kernel [--json PATH] [--sweep] [--check BASELINE [--tol F]]
 *
 *   --json PATH   write the snapshot as JSON (CI artifact)
 *   --sweep       also run the headline sweep (honours REFRINT_REFS /
 *                 REFRINT_APPS / REFRINT_CACHE) and record its wall time
 *   --check FILE  compare against a committed baseline JSON; exit 1 if
 *                 any throughput metric regresses more than --tol
 *                 (default 0.30) below it, if peak RSS exceeds the
 *                 baseline by more than --tol, or if 32-core dispatch
 *                 throughput falls below 80% of 16-core (the scaling
 *                 guarantee of the timing-wheel kernel)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "common/prng.hh"
#include "mem/cache_array.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace refrint;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Self-rescheduling client: the kernel's common case (a core). */
struct Ticker : EventClient
{
    EventQueue *eq = nullptr;
    Tick period = 1;
    std::uint64_t fired = 0;

    void
    fire(Tick now, std::uint64_t) override
    {
        ++fired;
        eq->schedule(now + period, this, 0);
    }
};

/** Client that re-arms a cancellable deadline, cancelling the old one
 *  half the time — the refresh-engine reschedule pattern. */
struct Rearmer : EventClient
{
    EventQueue *eq = nullptr;
    Tick horizon = 50'000;
    std::uint64_t fired = 0;
    EventHandle handle;

    void
    fire(Tick now, std::uint64_t) override
    {
        ++fired;
        EventHandle stale =
            eq->scheduleCancellable(now + horizon, this, 0);
        if ((fired & 1) == 0) {
            eq->cancel(stale);
            handle = eq->scheduleCancellable(now + horizon / 2, this, 0);
        } else {
            handle = stale;
        }
    }
};

/** Kernel dispatch throughput over a simulation-like event mix.
 *  @p coreCount scales the client population the way MachineConfig
 *  scales the machine: N core-like tickers plus 4N engine-like
 *  rearmers (the paper machine's engine-to-core ratio). */
double
benchEvents(std::uint64_t targetEvents, std::uint32_t coreCount = 16)
{
    EventQueue eq;
    std::vector<Ticker> cores(coreCount);
    std::vector<Rearmer> engines(4 * static_cast<std::size_t>(coreCount));
    for (std::size_t i = 0; i < cores.size(); ++i) {
        cores[i].eq = &eq;
        cores[i].period = 3 + static_cast<Tick>(i % 5);
        eq.schedule(1 + static_cast<Tick>(i), &cores[i], 0);
    }
    for (std::size_t i = 0; i < engines.size(); ++i) {
        engines[i].eq = &eq;
        engines[i].horizon = 20'000 + 1'000 * static_cast<Tick>(i % 16);
        engines[i].handle = eq.scheduleCancellable(
            100 + 37 * static_cast<Tick>(i), &engines[i], 0);
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t dispatched = 0;
    while (dispatched < targetEvents && eq.step())
        ++dispatched;
    const double dt = secondsSince(t0);
    return static_cast<double>(dispatched) / dt;
}

/** Cache probe throughput on the paper's L3-bank shape.  @p coreCount
 *  scales the address footprint driven through the bank the way a
 *  larger machine does: the per-bank geometry is unchanged (banks
 *  scale with cores), but the cold tail spans a proportionally larger
 *  address range, so conflict churn grows with the machine. */
double
benchLookups(std::uint64_t targetLookups, std::uint32_t coreCount = 16)
{
    CacheGeometry geom;
    geom.sizeBytes = 512 * 1024; // one L3 bank (Table 5.1)
    geom.assoc = 8;
    geom.lineSize = 64;
    geom.latency = 4;
    geom.hashSets = true;
    CacheArray arr(geom, "bench_l3");

    const std::uint32_t coldSpan = (1u << 20) * (coreCount / 16u);

    // Address stream with cache-like locality: mostly re-touches of a
    // hot region, a tail of cold fills.
    Prng prng(0x5eed, 1);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    Tick now = 0;
    while (done < targetLookups) {
        const bool hot = (prng.next() & 7) != 0;
        const Addr a = static_cast<Addr>(
                           hot ? prng.below(8 * 1024)
                               : 8 * 1024 + prng.below(coldSpan)) *
                       64;
        ++now;
        CacheLine *l = arr.lookup(a);
        if (l != nullptr) {
            arr.touch(*l, now);
        } else {
            VictimRef v = arr.pickVictim(a);
            if (v.line->valid())
                arr.invalidate(*v.line);
            arr.install(v, a, now, Mesi::Shared);
        }
        ++done;
    }
    const double dt = secondsSince(t0);
    return static_cast<double>(done) / dt;
}

/** Peak resident set (VmHWM) in kB, or -1 where /proc is unavailable. */
double
peakRssKb()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtod(line.c_str() + 6, nullptr);
    }
    return -1.0;
}

/** Pull "key": number out of a (flat) JSON snapshot. */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace refrint;

    const char *jsonPath = nullptr;
    const char *checkPath = nullptr;
    double tolerance = 0.30;
    bool withSweep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            checkPath = argv[++i];
        } else if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
            if (!parseF64Strict(argv[++i], tolerance)) {
                std::fprintf(stderr, "bad --tol value '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--sweep") == 0) {
            withSweep = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_kernel [--json PATH] [--sweep] "
                         "[--check BASELINE [--tol F]]\n");
            return 2;
        }
    }

    // Warm-up pass, then the measured pass (first-touch page faults and
    // frequency ramp otherwise pollute the smaller CI machines).
    // Cores-scaling curve: the same event mix at every machine scale
    // the sweep exercises — the timing-wheel kernel should hold its
    // throughput roughly flat as the client population grows.
    const std::uint32_t curveCores[] = {4, 8, 16, 32, 64};
    double curve[5] = {0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < 5; ++i) {
        benchEvents(2'000'000, curveCores[i]);
        curve[i] = benchEvents(20'000'000, curveCores[i]);
    }
    const double eventsPerSec = curve[2];   // 16c: the headline metric
    const double eventsPerSec32 = curve[3]; // 32c: the scaling gate
    benchLookups(2'000'000);
    const double lookupsPerSec = benchLookups(20'000'000);
    benchLookups(2'000'000, 32);
    const double lookupsPerSec32 = benchLookups(20'000'000, 32);
    const double rssKb = peakRssKb();

    for (std::size_t i = 0; i < 5; ++i)
        std::printf("events/sec (%2uc): %.3e\n", curveCores[i], curve[i]);
    std::printf("lookups/sec      : %.3e\n", lookupsPerSec);
    std::printf("lookups/sec (32c): %.3e\n", lookupsPerSec32);
    std::printf("peak rss         : %.0f kB\n", rssKb);

    double sweepWall = -1.0;
    std::size_t sweepSims = 0;
    if (withSweep) {
        const auto t0 = std::chrono::steady_clock::now();
        const SweepResult s = bench::paperSweep();
        sweepWall = secondsSince(t0);
        sweepSims = s.simulations;
        std::printf("sweep wall  : %.3f s (%zu simulations, %zu rows)\n",
                    sweepWall, sweepSims, s.normalized.size());
    }

    if (jsonPath != nullptr) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath);
            return 1;
        }
        out << "{\n"
            << "  \"bench\": \"kernel\",\n"
            << "  \"events_per_sec\": " << eventsPerSec << ",\n"
            << "  \"events_per_sec_c4\": " << curve[0] << ",\n"
            << "  \"events_per_sec_c8\": " << curve[1] << ",\n"
            << "  \"events_per_sec_c32\": " << eventsPerSec32 << ",\n"
            << "  \"events_per_sec_c64\": " << curve[4] << ",\n"
            << "  \"lookups_per_sec\": " << lookupsPerSec << ",\n"
            << "  \"lookups_per_sec_c32\": " << lookupsPerSec32 << ",\n"
            << "  \"peak_rss_kb\": " << rssKb << ",\n"
            << "  \"sweep_wall_s\": " << sweepWall << ",\n"
            << "  \"sweep_simulations\": " << sweepSims << ",\n"
            << "  \"refs_per_core\": " << bench::defaultRefs() << "\n"
            << "}\n";
    }

    if (checkPath != nullptr) {
        std::ifstream in(checkPath);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n", checkPath);
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        const std::string base = ss.str();
        bool ok = true;
        struct
        {
            const char *key;
            double current;
        } checks[] = {{"events_per_sec", eventsPerSec},
                      {"events_per_sec_c4", curve[0]},
                      {"events_per_sec_c8", curve[1]},
                      {"events_per_sec_c32", eventsPerSec32},
                      {"events_per_sec_c64", curve[4]},
                      {"lookups_per_sec", lookupsPerSec},
                      {"lookups_per_sec_c32", lookupsPerSec32}};
        for (const auto &c : checks) {
            const double want = jsonNumber(base, c.key);
            if (want <= 0)
                continue; // metric absent from the baseline
            const double floor = want * (1.0 - tolerance);
            const bool pass = c.current >= floor;
            std::printf("check %-19s %.3e vs baseline %.3e (floor "
                        "%.3e): %s\n",
                        c.key, c.current, want, floor,
                        pass ? "ok" : "REGRESSION");
            ok = ok && pass;
        }
        // Peak RSS regresses upward: gate against a ceiling instead.
        const double rssWant = jsonNumber(base, "peak_rss_kb");
        if (rssWant > 0 && rssKb > 0) {
            const double ceiling = rssWant * (1.0 + tolerance);
            const bool pass = rssKb <= ceiling;
            std::printf("check %-19s %.0f kB vs baseline %.0f kB "
                        "(ceiling %.0f kB): %s\n",
                        "peak_rss_kb", rssKb, rssWant, ceiling,
                        pass ? "ok" : "REGRESSION");
            ok = ok && pass;
        }
        // Scaling gate: the wheel kernel's dispatch cost is flat in
        // the client population, so 32-core throughput must hold at
        // least 80% of 16-core — the regression this bench exists to
        // catch (events_per_sec_c32 used to be 0.74x of 16c).
        {
            const bool pass = eventsPerSec32 >= 0.8 * eventsPerSec;
            std::printf("check %-19s c32/c16 ratio %.2f (floor 0.80): "
                        "%s\n",
                        "events_scaling", eventsPerSec32 / eventsPerSec,
                        pass ? "ok" : "REGRESSION");
            ok = ok && pass;
        }
        if (!ok)
            return 1;
    }
    return 0;
}
