/**
 * @file
 * Reproduces Fig. 6.1: memory energy as the sum of L1, L2, L3 and DRAM
 * energies (normalized to the full-SRAM memory energy), averaged over
 * all applications, for the full Table 5.4 sweep.
 */

#include "bench_common.hh"

int
main()
{
    using namespace refrint;
    const SweepResult s = bench::paperSweep();
    printFig61(s);
    return 0;
}
