/**
 * @file
 * Reproduces Fig. 6.2: on-chip dynamic, leakage, refresh and DRAM
 * energy (normalized to full-SRAM memory energy), per application
 * class and averaged over all applications.
 */

#include "bench_common.hh"

int
main()
{
    using namespace refrint;
    const SweepResult s = bench::paperSweep();
    for (int cls : {1, 2, 3, 0})
        printFig62(s, cls);
    return 0;
}
