/**
 * @file
 * Reproduces Fig. 6.3: normalized total system energy (cores, caches,
 * network, DRAM) for Class 1 applications and for all applications.
 */

#include "bench_common.hh"

int
main()
{
    using namespace refrint;
    const SweepResult s = bench::paperSweep();
    for (int cls : {1, 0})
        printFig63(s, cls);
    return 0;
}
