/**
 * @file
 * Reproduces the paper's headline comparison (abstract / §6): at 50 us
 * retention, the naive eDRAM baseline (Periodic All) vs Refrint
 * WB(32,32), both against the full-SRAM machine.
 */

#include "bench_common.hh"

int
main()
{
    using namespace refrint;
    const SweepResult s = bench::paperSweep();
    printHeadline(s);
    return 0;
}
