/**
 * @file
 * refrint_cli — command-line front end for the Refrint simulator.
 *
 * Every subcommand is a thin plan-builder over the experiment API
 * (src/api/): it assembles an ExperimentPlan, picks the result sinks,
 * and hands both to a Session.  `refrint_cli help` lists the
 * subcommands, `refrint_cli help <cmd>` shows one in detail.
 *
 * Exit codes: 0 success, 1 runtime error (unknown app, unreadable
 * file, impossible configuration), 2 usage error (bad flags or
 * arguments).  Numeric arguments are parsed strictly: "--refs 1e6" is
 * an error, not a silent 1.
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/experiment_plan.hh"
#include "api/result_sink.hh"
#include "api/session.hh"
#include "common/env.hh"
#include "edram/retention.hh"
#include "harness/binning.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "service/coordinator.hh"
#include "service/serve.hh"
#include "service/store.hh"
#include "service/worker.hh"
#include "trace/trace.hh"
#include "validate/validate.hh"
#include "workload/method.hh"
#include "workload/workload.hh"

namespace
{

using namespace refrint;

struct Args
{
    std::string app = "fft";

    /** Every --app given, in order: sweep/figures use the full list to
     *  replace the paper-app axis (single-app commands use .app). */
    std::vector<std::string> apps;
    std::string policy = "R.WB(32,32)";
    double retentionUs = 50.0;
    std::uint64_t refs = 120'000;
    std::uint64_t seed = 1;
    std::uint32_t cores = 16; ///< machine scale (4..64)
    bool hybrid = false;      ///< SRAM L1/L2 over the eDRAM LLC
    unsigned jobs = 0; ///< sweep workers; 0 = $REFRINT_JOBS or serial
    bool sram = false;
    bool alt = false;  ///< run the alternate energy backend alongside
    bool verbose = false; ///< validate: list every finding
    bool progress = false; ///< per-run progress ticker on stderr
    double decayUs = 0.0;
    double ambientC = 0.0; ///< 0 = thermal subsystem off
    std::string ambients = "45,65,85"; ///< thermal-study axis
    std::string cache; ///< result cache; empty = $REFRINT_CACHE/default
    std::string store; ///< sharded result store dir (replaces --cache)
    std::string plan;  ///< JSON plan file replacing the built-in grid
    std::string jsonl; ///< JSON Lines result sink ("-" = stdout)
    std::string csv;   ///< CSV result sink ("-" = stdout)
    std::string in, out;
    unsigned workers = 0;   ///< sweep: shard the plan across N workers
    unsigned retries = 1;   ///< sweep --workers: extra attempts/range
    double workerTimeout = 0; ///< sweep --workers: no-progress deadline
    bool sync = false;      ///< --store: fdatasync every append
    bool repair = false;    ///< cache scrub: quarantine + rebuild
    std::string range;      ///< worker: scenario index range "A:B"
    std::string socket;     ///< serve/submit: unix socket path
    unsigned port = 0;      ///< serve/submit: TCP port on 127.0.0.1
    unsigned maxQueue = 16; ///< serve: pending-connection bound
    double requestTimeout = 0; ///< serve: per-plan wall deadline
    double idleTimeout = 0;    ///< serve: silent-client read timeout

    /** Non-flag tokens, e.g. the "dump" in `plan dump`. */
    std::vector<std::string> positional;

    /** Grid-shaping flags actually given on the command line; a plan
     *  file replaces the built-in grid, so combining them with --plan
     *  is a usage error rather than a silent ignore. */
    std::vector<std::string> gridFlags;
};

struct Command
{
    const char *name;
    const char *summary; ///< one line for the command index
    const char *usage;   ///< synopsis + options for `help <cmd>`
    int (*run)(const Args &);
    bool runsPlans = false; ///< accepts the shared sink/cache flags
    bool usesPlan = false;  ///< accepts --plan without the sink flags
                            ///< (worker, submit)
};

/** Flags shared by every plan-running command. */
const char kCommonSinkHelp[] =
    "\nshared sink/cache options:\n"
    "  --jsonl FILE     stream one JSON object per run; \"-\" streams\n"
    "                   to stdout and replaces the default report\n"
    "  --csv FILE       stream one CSV row per run (\"-\" as above)\n"
    "  --progress       per-run progress ticker on stderr\n"
    "  --cache PATH     result cache (default $REFRINT_CACHE or\n"
    "                   ./refrint_sweep_cache.csv)\n"
    "  --store DIR      sharded result store directory (crash- and\n"
    "                   multi-process-safe; replaces --cache)\n"
    "  --sync           fdatasync every store append (power-loss\n"
    "                   durability per row; needs --store)\n"
    "  --jobs N         worker threads (default $REFRINT_JOBS or 1)\n";

void
printCommandHelp(const Command &c, std::FILE *out)
{
    std::fputs(c.usage, out);
    if (c.runsPlans)
        std::fputs(kCommonSinkHelp, out);
}

const Command *commandIndex();       // forward (table below)
const Command *findCommand(const std::string &name);
std::size_t commandCount();

/** The command being parsed/executed, for pointed usage errors. */
const Command *gActive = nullptr;

void
printCommandIndex(std::FILE *out)
{
    std::fprintf(out, "usage: refrint_cli <command> [options]\n\n"
                      "commands:\n");
    const Command *cmds = commandIndex();
    for (std::size_t i = 0; i < commandCount(); ++i)
        std::fprintf(out, "  %-14s %s\n", cmds[i].name, cmds[i].summary);
    std::fprintf(out, "\nsee 'refrint_cli help <command>' for options "
                      "and examples.\n");
}

/** Report a usage error for the active command and exit 2. */
[[noreturn]] void
usageError(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    if (gActive != nullptr) {
        std::fputc('\n', stderr);
        printCommandHelp(*gActive, stderr);
    } else {
        printCommandIndex(stderr);
    }
    std::exit(2);
}

/** Strict decimal integer argument, or exit with a pointed message. */
std::uint64_t
argU64(const char *flag, const char *v)
{
    std::uint64_t out = 0;
    if (!parseU64Strict(v, out))
        usageError("%s wants a plain decimal integer, got '%s'", flag,
                   v);
    return out;
}

/** Strict finite floating-point argument, or exit with a message. */
double
argF64(const char *flag, const char *v)
{
    double out = 0;
    if (!parseF64Strict(v, out))
        usageError("%s wants a finite number, got '%s'", flag, v);
    return out;
}

Args
parseArgs(int argc, char **argv, int first)
{
    Args a;
    for (int i = first; i < argc; ++i) {
        const std::string k = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError("%s needs a value", k.c_str());
            return argv[++i];
        };
        if (!k.empty() && k[0] != '-') {
            a.positional.push_back(k);
            continue;
        }
        if (k == "--app" || k == "--retention" || k == "--refs" ||
            k == "--seed" || k == "--cores" || k == "--hybrid" ||
            k == "--ambients")
            a.gridFlags.push_back(k);
        // The plan/sink flags only mean something to commands that run
        // plans; anywhere else they would be silently ignored.
        if (k == "--plan" && (gActive == nullptr ||
                              !(gActive->runsPlans || gActive->usesPlan)))
            usageError("%s applies only to the commands that run or "
                       "ship plans (sweep, figures, thermal-study, "
                       "worker, submit)",
                       k.c_str());
        if ((k == "--jsonl" || k == "--csv" || k == "--progress") &&
            (gActive == nullptr || !gActive->runsPlans))
            usageError("%s applies only to the plan-running commands "
                       "(sweep, figures, thermal-study)",
                       k.c_str());
        if (k == "--app") {
            a.app = val();
            a.apps.push_back(a.app);
        }
        else if (k == "--policy")
            a.policy = val();
        else if (k == "--retention") {
            a.retentionUs = argF64("--retention", val());
            if (a.retentionUs <= 0)
                usageError("--retention must be positive");
        }
        else if (k == "--refs")
            a.refs = argU64("--refs", val());
        else if (k == "--seed")
            a.seed = argU64("--seed", val());
        else if (k == "--jobs") {
            const std::uint64_t n = argU64("--jobs", val());
            if (n == 0 || n > 4096)
                usageError("--jobs wants an integer in [1, 4096]");
            a.jobs = static_cast<unsigned>(n);
        }
        else if (k == "--cores") {
            const std::uint64_t n = argU64("--cores", val());
            if (n < 4 || n > 64)
                usageError("--cores wants an integer in [4, 64]");
            a.cores = static_cast<std::uint32_t>(n);
        }
        else if (k == "--hybrid")
            a.hybrid = true;
        else if (k == "--sram")
            a.sram = true;
        else if (k == "--alt")
            a.alt = true;
        else if (k == "--verbose")
            a.verbose = true;
        else if (k == "--progress")
            a.progress = true;
        else if (k == "--decay")
            a.decayUs = argF64("--decay", val());
        else if (k == "--ambient") {
            a.ambientC = argF64("--ambient", val());
            if (a.ambientC <= 0)
                usageError("--ambient wants a temperature in deg C "
                           "(> 0)");
            const ThermalResponse resp{};
            if (a.ambientC < resp.minAmbientC() ||
                a.ambientC > resp.maxAmbientC())
                usageError("--ambient %g is outside the thermal "
                           "response's resolvable range [%g, %g] deg C",
                           a.ambientC, resp.minAmbientC(),
                           resp.maxAmbientC());
        }
        else if (k == "--ambients")
            a.ambients = val();
        else if (k == "--cache")
            a.cache = val();
        else if (k == "--store")
            a.store = val();
        else if (k == "--workers") {
            const std::uint64_t n = argU64("--workers", val());
            if (n == 0 || n > 256)
                usageError("--workers wants an integer in [1, 256]");
            a.workers = static_cast<unsigned>(n);
        }
        else if (k == "--retries") {
            const std::uint64_t n = argU64("--retries", val());
            if (n > 100)
                usageError("--retries wants an integer in [0, 100]");
            a.retries = static_cast<unsigned>(n);
        }
        else if (k == "--worker-timeout") {
            a.workerTimeout = argF64("--worker-timeout", val());
            if (a.workerTimeout <= 0)
                usageError("--worker-timeout wants seconds > 0");
        }
        else if (k == "--sync")
            a.sync = true;
        else if (k == "--repair")
            a.repair = true;
        else if (k == "--max-queue") {
            const std::uint64_t n = argU64("--max-queue", val());
            if (n == 0 || n > 4096)
                usageError("--max-queue wants an integer in [1, 4096]");
            a.maxQueue = static_cast<unsigned>(n);
        }
        else if (k == "--request-timeout") {
            a.requestTimeout = argF64("--request-timeout", val());
            if (a.requestTimeout <= 0)
                usageError("--request-timeout wants seconds > 0");
        }
        else if (k == "--idle-timeout") {
            a.idleTimeout = argF64("--idle-timeout", val());
            if (a.idleTimeout <= 0)
                usageError("--idle-timeout wants seconds > 0");
        }
        else if (k == "--range")
            a.range = val();
        else if (k == "--socket")
            a.socket = val();
        else if (k == "--port") {
            const std::uint64_t n = argU64("--port", val());
            if (n == 0 || n > 65535)
                usageError("--port wants an integer in [1, 65535]");
            a.port = static_cast<unsigned>(n);
        }
        else if (k == "--plan")
            a.plan = val();
        else if (k == "--jsonl")
            a.jsonl = val();
        else if (k == "--csv")
            a.csv = val();
        else if (k == "--in")
            a.in = val();
        else if (k == "--out")
            a.out = val();
        else
            usageError("unknown option '%s'", k.c_str());
    }
    if (a.sram && a.hybrid)
        usageError("--hybrid builds SRAM L1/L2 over an eDRAM LLC; "
                   "drop --sram");
    if (a.sram && a.ambientC > 0.0)
        usageError("--ambient needs an eDRAM machine; drop --sram "
                   "(SRAM retention is unlimited)");
    if (a.decayUs > 0.0 && a.ambientC > 0.0)
        usageError("--decay (SRAM cache-decay comparator) and "
                   "--ambient (eDRAM thermal) are mutually exclusive");
    return a;
}

/** Parse the --ambients comma list into strictly valid temperatures. */
std::vector<double>
parseAmbients(const std::string &list)
{
    std::vector<double> out;
    std::string tok;
    std::stringstream ss(list);
    const ThermalResponse resp{};
    while (std::getline(ss, tok, ',')) {
        double v = 0;
        if (!parseF64Strict(tok.c_str(), v) || v <= 0)
            usageError("--ambients wants positive deg C values, got "
                       "'%s'",
                       tok.c_str());
        if (v < resp.minAmbientC() || v > resp.maxAmbientC())
            usageError("--ambients value %g is outside the thermal "
                       "response's resolvable range [%g, %g] deg C",
                       v, resp.minAmbientC(), resp.maxAmbientC());
        out.push_back(v);
    }
    if (out.empty())
        usageError("--ambients list is empty");
    return out;
}

/** Resolve the sweep cache path: --cache beats $REFRINT_CACHE. */
std::string
cachePathFor(const Args &a)
{
    return a.cache.empty() ? defaultCachePath() : a.cache;
}

/** Build the session behind a plan-running command: a sharded store
 *  when --store is given, the legacy single-file cache otherwise. */
std::unique_ptr<Session>
sessionFor(const Args &a)
{
    if (!a.store.empty() && !a.cache.empty())
        usageError("--store and --cache are exclusive (one result "
                   "location per run)");
    if (!a.store.empty())
        return std::make_unique<Session>(
            std::make_unique<ShardedStore>(a.store, 0, a.sync),
            a.jobs);
    if (a.sync)
        usageError("--sync needs --store DIR (the legacy cache has no "
                   "durable append mode)");
    return std::make_unique<Session>(
        SessionOptions{cachePathFor(a), a.jobs});
}

// ---------------------------------------------------------------------
// Sinks: every plan-running command shares the same observer wiring.
// ---------------------------------------------------------------------

/** Owns the optional file-backed sinks a command attaches. */
struct SinkSet
{
    std::vector<std::unique_ptr<ResultSink>> owned;
    std::vector<ResultSink *> ptrs;
    std::vector<std::FILE *> files; ///< opened for a sink; closed here

    ~SinkSet()
    {
        for (std::FILE *f : files)
            std::fclose(f);
    }

    void
    add(std::unique_ptr<ResultSink> s)
    {
        ptrs.push_back(s.get());
        owned.push_back(std::move(s));
    }
};

/** Open @p path for a sink ("-" = stdout); null on failure. */
std::FILE *
openSinkFile(SinkSet &sinks, const std::string &path)
{
    if (path == "-")
        return stdout;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        std::fprintf(stderr, "cannot write sink file: %s\n",
                     path.c_str());
    else
        sinks.files.push_back(f);
    return f;
}

/** True when a machine-readable sink streams to stdout — the default
 *  human report must then stay out of the stream. */
bool
stdoutIsMachineReadable(const Args &a)
{
    if (a.jsonl == "-" && a.csv == "-")
        usageError("only one of --jsonl/--csv can stream to stdout");
    return a.jsonl == "-" || a.csv == "-";
}

/** A plan file replaces the built-in grid; reject grid flags that
 *  would otherwise be silently ignored. */
void
rejectGridFlagsWithPlan(const Args &a)
{
    if (!a.plan.empty() && !a.gridFlags.empty())
        usageError("--plan replaces the built-in grid; drop %s (the "
                   "plan file already fixes it)",
                   a.gridFlags.front().c_str());
}

/** Attach the generic sinks (--jsonl, --csv, --progress); false on a
 *  runtime error (unwritable file). */
bool
attachCommonSinks(const Args &a, SinkSet &sinks)
{
    if (!a.jsonl.empty()) {
        std::FILE *f = openSinkFile(sinks, a.jsonl);
        if (f == nullptr)
            return false;
        sinks.add(std::make_unique<JsonLinesSink>(f));
    }
    if (!a.csv.empty()) {
        std::FILE *f = openSinkFile(sinks, a.csv);
        if (f == nullptr)
            return false;
        sinks.add(std::make_unique<CsvSink>(f));
    }
    if (a.progress)
        sinks.add(std::make_unique<ProgressSink>());
    return true;
}

// ---------------------------------------------------------------------
// Plan builders: each subcommand's flags -> one ExperimentPlan.
// ---------------------------------------------------------------------

/** The sweep/figures grid for the given flags (the paper's Table 5.4
 *  grid, possibly on a scaled or hybrid machine). */
ExperimentPlan
sweepPlanFor(const Args &a, bool announceMachine)
{
    SweepSpec spec;
    spec.sim.refsPerCore = a.refs;
    // --app SPEC (repeatable) replaces the paper-app axis; specs can
    // carry method parameters ("agg:tables=part,..."), which the
    // comma-splitting REFRINT_APPS env list cannot.
    for (const std::string &s : a.apps) {
        ResolvedWorkload rw;
        std::string err;
        if (!workloadRegistry().resolve(s, rw, err))
            fatal("sweep --app: %s\n%s", err.c_str(),
                  workloadRegistry().describe().c_str());
        spec.apps.push_back(rw.workload);
    }
    if (a.cores != 16 || a.hybrid) {
        spec.machines = {MachineAxis{a.cores, a.hybrid}};
        if (announceMachine)
            std::printf("machine: %u cores (%s)\n", a.cores,
                        a.hybrid ? "hybrid SRAM L1/L2 + eDRAM LLC"
                                 : "uniform tech");
    }
    return ExperimentPlan::fromSweepSpec(std::move(spec));
}

/** The ambient-temperature study plan for the given flags; null app
 *  name errors are reported by the builder (fatal, exit 1). */
ExperimentPlan
thermalPlanFor(const Args &a)
{
    SimParams sim;
    sim.refsPerCore = a.refs;
    sim.seed = a.seed;
    std::vector<MachineAxis> machines;
    if (a.cores != 16 || a.hybrid)
        machines = {MachineAxis{a.cores, a.hybrid}};
    return ExperimentPlan::thermalStudy(a.app, a.retentionUs,
                                        parseAmbients(a.ambients), sim,
                                        machines);
}

// ---------------------------------------------------------------------
// run / trace-run share the single-run printer.
// ---------------------------------------------------------------------

MachineConfig
machineFor(const Args &a)
{
    if (a.sram && a.decayUs > 0.0)
        return MachineConfig::paperSramDecay(usToTicks(a.decayUs),
                                             a.cores);
    if (a.sram)
        return MachineConfig::paperSram(a.cores);
    MachineConfig cfg =
        a.hybrid ? MachineConfig::paperHybrid(parsePolicy(a.policy),
                                              usToTicks(a.retentionUs),
                                              a.cores)
                 : MachineConfig::paperEdram(parsePolicy(a.policy),
                                             usToTicks(a.retentionUs),
                                             a.cores);
    if (a.ambientC > 0.0) {
        cfg.thermal.enabled = true;
        cfg.thermal.ambientC = a.ambientC;
    }
    return cfg;
}

void
printRun(const Workload &app, const Args &a)
{
    SimParams sim;
    sim.refsPerCore = a.refs;
    sim.seed = a.seed;
    EnergyParams energy = EnergyParams::calibrated();
    if (a.alt)
        energy.altModel = 1;

    const RunResult base =
        runOnce(MachineConfig::paperSram(a.cores), app, sim, energy);
    const MachineConfig cfg = machineFor(a);
    const RunResult r = a.sram && a.decayUs == 0.0
                            ? base
                            : runOnce(cfg, app, sim, energy);
    const NormalizedResult n = normalize(r, base);

    std::printf("app            %s (class %d)\n", app.name(),
                app.paperClass());
    std::printf("machine        %s%s", cfg.techSummary().c_str(),
                cfg.decay.enabled ? "+decay" : "");
    if (cfg.anyEdram())
        std::printf("  policy %s  retention %.0f us",
                    cfg.llc().policy.name().c_str(), a.retentionUs);
    if (cfg.numCores != 16)
        std::printf("  cores %u (%ux%u torus)", cfg.numCores,
                    cfg.torusDim, cfg.torusDim);
    std::printf("\n");
    if (cfg.thermal.enabled)
        std::printf("thermal        ambient %.1f C  peak %.1f C  "
                    "(retention x%.2f at peak)\n",
                    r.ambientC, r.maxTempC,
                    cfg.retention.thermal.factorAt(r.maxTempC));
    std::printf("exec time      %.3f ms  (%.3fx of SRAM)\n",
                ticksToSeconds(r.execTicks) * 1e3, n.time);
    std::printf("mem energy     %.3f mJ  (%.3fx of SRAM)\n",
                r.energy.memTotal() * 1e3, n.memEnergy);
    std::printf("sys energy     %.3f mJ  (%.3fx of SRAM)\n",
                r.energy.systemTotal() * 1e3, n.sysEnergy);
    std::printf("  dynamic/leak/refresh/dram  %.3f / %.3f / %.3f / %.3f"
                "  (of SRAM mem energy)\n",
                n.dynamic, n.leakage, n.refresh, n.dram);
    std::printf("L3 misses      %llu    DRAM accesses %llu\n",
                static_cast<unsigned long long>(r.counts.l3Misses),
                static_cast<unsigned long long>(r.counts.dramAccesses));
    std::printf("refreshes      L1 %llu  L2 %llu  L3 %llu\n",
                static_cast<unsigned long long>(r.counts.l1Refreshes),
                static_cast<unsigned long long>(r.counts.l2Refreshes),
                static_cast<unsigned long long>(r.counts.l3Refreshes));
    std::printf("breakdown      dyn/leak/ref (mJ)  L1 %.3f/%.3f/%.3f  "
                "L2 %.3f/%.3f/%.3f  L3 %.3f/%.3f/%.3f\n",
                r.energy.l1Dyn * 1e3, r.energy.l1Leak * 1e3,
                r.energy.l1Ref * 1e3, r.energy.l2Dyn * 1e3,
                r.energy.l2Leak * 1e3, r.energy.l2Ref * 1e3,
                r.energy.l3Dyn * 1e3, r.energy.l3Leak * 1e3,
                r.energy.l3Ref * 1e3);
    if (r.hasAlt)
        std::printf("alt backend    mem %.3f mJ  sys %.3f mJ  "
                    "(disagreement %.2f%%)\n",
                    r.alt.memTotal() * 1e3, r.alt.systemTotal() * 1e3,
                    energyDisagreement(r) * 100.0);
    if (r.requests > 0)
        std::printf("requests       %.0f   latency p50/p95/p99  "
                    "%.3f / %.3f / %.3f us\n",
                    r.requests, r.reqP50Us, r.reqP95Us, r.reqP99Us);
}

// ---------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------

/** Most commands take no positional argument — reject strays early. */
void
rejectPositionals(const Args &a)
{
    if (!a.positional.empty())
        usageError("unexpected argument '%s'",
                   a.positional.front().c_str());
}

int
cmdRun(const Args &a)
{
    rejectPositionals(a);
    const Workload *app = findWorkload(a.app);
    if (app == nullptr) {
        std::fprintf(stderr,
                     "unknown application '%s' (try 'list')\n%s",
                     a.app.c_str(),
                     workloadRegistry().describe().c_str());
        return 1;
    }
    printRun(*app, a);
    return 0;
}

/** sweep --workers N: shard the plan across worker subprocesses and
 *  merge their row streams (service/coordinator.hh). */
int
runSweepCoordinated(const Args &a)
{
    if (a.jsonl.empty())
        usageError("sweep --workers streams merged rows only; add "
                   "--jsonl FILE (or --jsonl -)");
    if (!a.csv.empty() || a.progress)
        usageError("sweep --workers supports only the --jsonl sink");
    if (!a.cache.empty())
        usageError("workers share a --store directory; the legacy "
                   "--cache file is single-process");

    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n <= 0) {
        std::fprintf(stderr,
                     "cannot resolve the worker binary path\n");
        return 1;
    }
    exe[n] = '\0';

    // Workers load the plan from a file; write the built-in grid out
    // when no --plan was given.
    std::string planPath = a.plan;
    std::string tempPlan;
    if (planPath.empty()) {
        const ExperimentPlan plan = sweepPlanFor(a, false);
        char tpl[] = "/tmp/refrint-plan-XXXXXX";
        const int fd = ::mkstemp(tpl);
        if (fd < 0) {
            std::fprintf(stderr, "cannot create temp plan file\n");
            return 1;
        }
        ::close(fd);
        tempPlan = tpl;
        plan.saveFile(tempPlan);
        planPath = tempPlan;
    }

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.storeDir = a.store;
    opts.workers = a.workers;
    opts.workerBin = exe;
    opts.retries = a.retries;
    opts.workerTimeoutSec = a.workerTimeout;
    SinkSet files; // reuse the sink-file plumbing for the merged stream
    opts.out = openSinkFile(files, a.jsonl);
    int rc = 1;
    if (opts.out != nullptr)
        rc = runCoordinator(opts);
    if (!tempPlan.empty())
        ::unlink(tempPlan.c_str());
    return rc;
}

int
cmdSweepOrFigures(const Args &a, bool figures)
{
    rejectPositionals(a);
    rejectGridFlagsWithPlan(a);
    if (a.workers > 0) {
        if (figures)
            usageError("--workers applies to sweep; figures renders "
                       "its report in one process");
        return runSweepCoordinated(a);
    }
    const bool quiet = stdoutIsMachineReadable(a);
    ExperimentPlan plan =
        !a.plan.empty() ? ExperimentPlan::loadFile(a.plan)
                        : sweepPlanFor(a, /*announceMachine=*/!quiet);
    // --alt runs the second-opinion energy backend alongside the
    // primary; its rows are keyed separately (|en= tag), never
    // aliasing the default corpus.
    if (a.alt)
        plan.energy.altModel = 1;
    SinkSet sinks;
    if (!attachCommonSinks(a, sinks))
        return 1;
    if (!quiet) {
        if (figures)
            sinks.add(std::make_unique<FiguresSink>());
        sinks.add(std::make_unique<HeadlineSink>());
        // These print nothing unless the plan held request-serving
        // runs / the alternate backend, so the default sweep output
        // stays byte-identical.
        sinks.add(std::make_unique<LatencySink>());
        sinks.add(std::make_unique<DisagreementSink>());
    }
    sessionFor(a)->run(plan, sinks.ptrs);
    return 0;
}

int
cmdSweep(const Args &a)
{
    return cmdSweepOrFigures(a, false);
}

int
cmdFigures(const Args &a)
{
    return cmdSweepOrFigures(a, true);
}

int
cmdThermalStudy(const Args &a)
{
    rejectPositionals(a);
    rejectGridFlagsWithPlan(a);
    const bool quiet = stdoutIsMachineReadable(a);
    // The table header names the studied app/retention: from the flags
    // for the built-in plan, from the plan's own measured scenarios
    // when one is replayed.
    std::string app = a.app;
    double retentionUs = a.retentionUs;
    ExperimentPlan plan;
    if (!a.plan.empty()) {
        plan = ExperimentPlan::loadFile(a.plan);
        for (std::size_t i = 0; i < plan.size(); ++i) {
            if (plan.baseline[i] >= 0) {
                app = plan.scenarios[i].app;
                retentionUs = plan.scenarios[i].retentionUs;
                break;
            }
        }
    } else {
        if (findWorkload(a.app) == nullptr) {
            std::fprintf(stderr,
                         "unknown application '%s' (try 'list')\n%s",
                         a.app.c_str(),
                         workloadRegistry().describe().c_str());
            return 1;
        }
        plan = thermalPlanFor(a);
    }
    SinkSet sinks;
    if (!attachCommonSinks(a, sinks))
        return 1;
    if (!quiet)
        sinks.add(std::make_unique<ThermalStudySink>(app, retentionUs));
    sessionFor(a)->run(plan, sinks.ptrs);
    return 0;
}

int
cmdBinning(const Args &a)
{
    rejectPositionals(a);
    BinningSink sink;
    std::vector<ResultSink *> sinks{&sink};
    // The binning plan simulates nothing; keep the run cache untouched.
    Session session(SessionOptions{"", 0});
    session.run(ExperimentPlan::binning(), sinks);
    return 0;
}

int
cmdPlan(const Args &a)
{
    if (a.positional.empty() || a.positional[0] != "dump")
        usageError("plan wants the 'dump' action, e.g. "
                   "'refrint_cli plan dump --out plan.json'");
    const std::string what =
        a.positional.size() > 1 ? a.positional[1] : "sweep";
    if (a.positional.size() > 2)
        usageError("unexpected argument '%s'",
                   a.positional[2].c_str());

    ExperimentPlan plan;
    if (what == "sweep" || what == "figures") {
        plan = sweepPlanFor(a, false);
        if (what == "figures")
            plan.name = "figures";
    } else if (what == "thermal-study") {
        plan = thermalPlanFor(a);
    } else if (what == "binning") {
        plan = ExperimentPlan::binning();
    } else {
        usageError("unknown plan '%s' (sweep, figures, thermal-study, "
                   "binning)",
                   what.c_str());
    }

    if (a.out.empty())
        std::fputs(plan.toJson().c_str(), stdout);
    else
        plan.saveFile(a.out);
    return 0;
}

int
cmdWorker(const Args &a)
{
    rejectPositionals(a);
    if (a.plan.empty())
        usageError("worker needs --plan FILE");
    const auto colon = a.range.find(':');
    std::uint64_t begin = 0, end = 0;
    if (a.range.empty() || colon == std::string::npos ||
        !parseU64Strict(a.range.substr(0, colon).c_str(), begin) ||
        !parseU64Strict(a.range.substr(colon + 1).c_str(), end) ||
        begin >= end)
        usageError("worker needs --range A:B with A < B (scenario "
                   "indices into the plan)");
    if (!a.store.empty() && !a.cache.empty())
        usageError("--store and --cache are exclusive");

    WorkerRangeOptions opts;
    opts.planPath = a.plan;
    opts.begin = static_cast<std::size_t>(begin);
    opts.end = static_cast<std::size_t>(end);
    opts.storeDir = a.store;
    opts.cachePath = a.cache; // deliberately NOT the $REFRINT_CACHE
                              // default: an unasked-for shared file
                              // would break coordinator byte-identity
    opts.jobs = a.jobs == 0 ? 1 : a.jobs;
    return runWorkerRange(opts);
}

int
cmdServe(const Args &a)
{
    rejectPositionals(a);
    if (a.socket.empty() == (a.port == 0))
        usageError("serve needs exactly one of --socket PATH or "
                   "--port N");
    if (!a.store.empty() && !a.cache.empty())
        usageError("--store and --cache are exclusive");
    ServeOptions opts;
    opts.socketPath = a.socket;
    opts.port = a.port;
    opts.storeDir = a.store;
    opts.cachePath = a.cache;
    opts.jobs = a.jobs;
    opts.maxQueue = a.maxQueue;
    opts.requestTimeoutSec = a.requestTimeout;
    opts.idleTimeoutSec = a.idleTimeout;
    return runServe(opts);
}

int
cmdSubmit(const Args &a)
{
    std::string op = "run";
    if (!a.positional.empty()) {
        op = a.positional[0];
        if (a.positional.size() > 1)
            usageError("unexpected argument '%s'",
                       a.positional[1].c_str());
        if (op != "stats" && op != "shutdown")
            usageError("unknown submit action '%s' (a plan via --plan, "
                       "or 'stats'/'shutdown')",
                       op.c_str());
    }
    if (a.socket.empty() == (a.port == 0))
        usageError("submit needs exactly one of --socket PATH or "
                   "--port N");
    if (op == "run" && a.plan.empty())
        usageError("submit needs --plan FILE (or the 'stats'/"
                   "'shutdown' action)");
    SubmitOptions opts;
    opts.socketPath = a.socket;
    opts.port = a.port;
    opts.planPath = a.plan;
    opts.op = op;
    return runSubmit(opts);
}

int
cmdCache(const Args &a)
{
    if (a.positional.empty() ||
        (a.positional[0] != "migrate" && a.positional[0] != "scrub"))
        usageError("cache wants the 'migrate' or 'scrub' action, e.g. "
                   "'refrint_cli cache scrub --store DIR --repair'");
    if (a.positional.size() > 1)
        usageError("unexpected argument '%s'",
                   a.positional[1].c_str());
    const std::string action = a.positional[0];
    if (a.store.empty())
        usageError("cache %s needs --store DIR (the sharded store to "
                   "%s)",
                   action.c_str(),
                   action == "migrate" ? "import into" : "verify");

    if (action == "scrub") {
        if (a.repair && !a.cache.empty())
            usageError("scrub repairs in place; drop --cache");
        const ScrubReport rep = scrubStore(a.store, a.repair, stdout);
        std::printf("scrub: %u shard(s), %zu committed row(s), "
                    "%zu unique key(s); %zu torn tail(s), %zu mid-file "
                    "corruption(s), %zu duplicate(s)%s\n",
                    rep.shardsScanned, rep.committed, rep.uniqueKeys,
                    rep.tornTail, rep.midFile, rep.duplicates,
                    a.repair ? "" : " (use --repair to quarantine "
                                    "and rebuild)");
        if (a.repair && (rep.quarantined > 0 || rep.compacted > 0))
            std::printf("scrub: quarantined %zu bad line(s) to "
                        "shard-NNN.bad, compacted %zu superseded "
                        "row(s)\n",
                        rep.quarantined, rep.compacted);
        // Exit 1 on unrepaired damage so scripts can gate on it.
        return rep.clean() || a.repair ? 0 : 1;
    }

    const std::string cachePath = cachePathFor(a);
    ShardedStore store(a.store);
    const std::size_t n = migrateLegacyCache(cachePath, store);
    std::printf("migrated %zu row(s) from %s into %s (%u shards, "
                "%zu rows total)\n",
                n, cachePath.c_str(), a.store.c_str(), store.shards(),
                store.rowCount());
    return 0;
}

int
cmdValidate(const Args &a)
{
    rejectPositionals(a);
    // No $REFRINT_CACHE default here: validation targets one corpus
    // the caller names explicitly, so a forgotten flag is a usage
    // error rather than a silent scan of an unrelated file.
    if (a.store.empty() == a.cache.empty())
        usageError("validate needs exactly one of --store DIR or "
                   "--cache PATH (the corpus to check)");
    ValidateOptions opts;
    opts.cachePath = a.cache;
    opts.storeDir = a.store;
    opts.jsonOut = a.out;
    opts.verbose = a.verbose;
    return runValidate(opts);
}

int
cmdTraceRecord(const Args &a)
{
    rejectPositionals(a);
    const Workload *app = findWorkload(a.app);
    if (app == nullptr || a.out.empty()) {
        std::fprintf(stderr, "trace-record needs --app and --out\n");
        return 1;
    }
    const Trace t = recordTrace(*app, a.cores, a.refs, a.seed);
    if (!saveTrace(t, a.out))
        return 1;
    std::printf("recorded %llu refs (%u cores) from %s to %s\n",
                static_cast<unsigned long long>(t.totalRefs()),
                t.numCores(), app->name(), a.out.c_str());
    return 0;
}

int
cmdTraceRun(const Args &a)
{
    rejectPositionals(a);
    if (a.in.empty()) {
        std::fprintf(stderr, "trace-run needs --in\n");
        return 1;
    }
    TraceWorkload app(loadTrace(a.in), a.in);
    printRun(app, a);
    return 0;
}

int
cmdList(const Args &a)
{
    rejectPositionals(a);
    std::printf("applications (Table 5.3 / binning of Table 6.1):\n");
    for (const Workload *w : paperWorkloads())
        std::printf("  %-14s class %d\n", w->name(), w->paperClass());
    std::printf("policies (Table 5.4): ");
    for (const RefreshPolicy &p : paperPolicySweep())
        std::printf("%s ", p.name().c_str());
    std::printf("\n  plus the SmartRefresh comparator: S.valid, "
                "S.WB(n,m), ...\n");
    std::printf("retentions: 50, 100, 200 (us)\n");
    std::printf("ambients (thermal-study / run --ambient): deg C, "
                "default 45,65,85\n");
    std::printf("machines: --cores 4..64 (square torus derived), "
                "--hybrid (SRAM L1/L2 + eDRAM L3)\n");
    std::printf("validation: 'validate --store DIR' checks a sweep "
                "corpus against the model\n"
                "  invariants and the analytic predictor (see 'help "
                "validate')\n");
    std::printf("\n%s", workloadRegistry().describe(true).c_str());
    return 0;
}

int
cmdHelp(const Args &a)
{
    if (a.positional.empty()) {
        printCommandIndex(stdout);
        return 0;
    }
    const Command *c = findCommand(a.positional[0]);
    if (c == nullptr) {
        std::fprintf(stderr, "unknown command '%s'\n",
                     a.positional[0].c_str());
        printCommandIndex(stderr);
        return 2;
    }
    printCommandHelp(*c, stdout);
    return 0;
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

const Command kCommands[] = {
    {"run", "one simulation, normalized against the SRAM baseline",
     "usage: refrint_cli run [options]\n"
     "  --app SPEC       workload name or method spec, e.g.\n"
     "                   'serve:rps=2e6,ws=64k' (default fft)\n"
     "  --policy P       refresh policy (default R.WB(32,32))\n"
     "  --retention US   eDRAM retention in us (default 50)\n"
     "  --refs N         references per core (default 120000)\n"
     "  --seed S         PRNG seed (default 1)\n"
     "  --sram           run the all-SRAM machine\n"
     "  --decay US       SRAM cache-decay comparator interval\n"
     "  --ambient C      enable the thermal subsystem at C deg C\n"
     "  --cores N        scale the machine to N cores (4..64)\n"
     "  --hybrid         SRAM L1/L2 over the eDRAM LLC\n"
     "  --alt            also compute the alternate energy backend\n"
     "                   and print the cross-model disagreement\n",
     cmdRun},
    {"sweep", "the paper's Table 5.4 sweep (473 runs at full size)",
     "usage: refrint_cli sweep [options]\n"
     "  --plan FILE      run a JSON experiment plan instead of the\n"
     "                   built-in grid (see 'plan dump')\n"
     "  --app SPEC       replace the paper-app axis (repeatable);\n"
     "                   SPEC is a name or method spec, e.g.\n"
     "                   'agg:tables=part,skew=0.8' (see 'list')\n"
     "  --refs N         references per core (default 120000)\n"
     "  --cores N        machine scale (4..64; rows machine-keyed)\n"
     "  --hybrid         SRAM L1/L2 over the eDRAM LLC\n"
     "  --alt            run the alternate energy backend alongside\n"
     "                   the primary (rows keyed separately via the\n"
     "                   plan's energy tag; adds the disagreement\n"
     "                   table to the report)\n"
     "  --workers N      shard the plan across N worker subprocesses\n"
     "                   (needs --jsonl; merged rows are byte-identical\n"
     "                   to a single-process --jobs 1 run)\n"
     "  --retries N      extra attempts per range after a worker\n"
     "                   crash/hang, with salvage of its flushed rows\n"
     "                   and capped exponential backoff (default 1)\n"
     "  --worker-timeout SEC   kill a worker whose row stream stops\n"
     "                   growing for SEC seconds (progress deadline;\n"
     "                   default off)\n",
     cmdSweep, /*runsPlans=*/true},
    {"figures", "Figs. 6.1-6.4 + the headline table",
     "usage: refrint_cli figures [options]\n"
     "  --plan FILE      run a JSON experiment plan instead of the\n"
     "                   built-in grid\n"
     "  --refs N         references per core (default 120000)\n"
     "  --cores N --hybrid    as for 'sweep'\n",
     cmdFigures, /*runsPlans=*/true},
    {"thermal-study", "sweep the ambient-temperature scenario axis",
     "usage: refrint_cli thermal-study [options]\n"
     "  --app NAME       workload (default fft)\n"
     "  --retention US   nominal retention (default 50)\n"
     "  --ambients LIST  comma-separated deg C (default 45,65,85)\n"
     "  --refs N --seed S --cores N --hybrid    as for 'run'\n"
     "  --plan FILE      run a JSON experiment plan instead\n",
     cmdThermalStudy, /*runsPlans=*/true},
    {"binning", "Table 6.1 application classification",
     "usage: refrint_cli binning\n", cmdBinning},
    {"plan", "dump experiment plans as shareable JSON files",
     "usage: refrint_cli plan dump [sweep|figures|thermal-study|"
     "binning] [options]\n"
     "  --out FILE       write the plan file (default stdout)\n"
     "  (grid options --refs/--cores/--hybrid, and for thermal-study\n"
     "   --app/--retention/--ambients/--seed, shape the dumped plan)\n"
     "\nA dumped plan replays with 'sweep --plan FILE' and produces\n"
     "rows byte-identical to the grid it was dumped from.\n",
     cmdPlan},
    {"worker", "run one scenario range of a plan (coordinator half)",
     "usage: refrint_cli worker --plan FILE --range A:B [options]\n"
     "  --plan FILE      the FULL experiment plan (JSON)\n"
     "  --range A:B      scenario indices to run, A inclusive to B\n"
     "                   exclusive; rows stream to stdout as JSON\n"
     "                   Lines with their global plan identity\n"
     "  --store DIR      sharded result store shared by all workers\n"
     "  --cache PATH     legacy cache (single worker only)\n"
     "  --jobs N         threads inside this worker (default 1)\n"
     "\nNormally spawned by 'sweep --workers N'; runnable by hand for\n"
     "debugging a shard.\n",
     cmdWorker, /*runsPlans=*/false, /*usesPlan=*/true},
    {"serve", "long-running experiment service on a socket",
     "usage: refrint_cli serve (--socket PATH | --port N) [options]\n"
     "  --socket PATH    listen on a unix socket\n"
     "  --port N         listen on 127.0.0.1:N\n"
     "  --store DIR      sharded result store (answers warm scenarios\n"
     "                   without simulating)\n"
     "  --cache PATH     legacy cache instead of a store\n"
     "  --jobs N         worker threads for cold scenarios\n"
     "  --max-queue N    pending-connection bound; a full queue sheds\n"
     "                   new connections with {\"error\":\"overloaded\"}\n"
     "                   (default 16)\n"
     "  --request-timeout SEC  per-plan wall deadline; scenarios not\n"
     "                   started in time are abandoned and the\n"
     "                   response ends with an error line (default "
     "off)\n"
     "  --idle-timeout SEC     close connections whose client sends\n"
     "                   nothing for SEC seconds (default off)\n"
     "\nRequests are newline-delimited JSON: a plan document runs it\n"
     "(rows + a {\"done\":...} summary with warm/cold counts, queue\n"
     "depth and per-scenario latency); {\"op\":\"stats\"} reports\n"
     "service counters; {\"op\":\"shutdown\"} stops the server.\n"
     "SIGTERM drains gracefully: stop accepting, finish queued\n"
     "connections, flush the store, exit 0.\n",
     cmdServe},
    {"submit", "send one request to a running 'serve'",
     "usage: refrint_cli submit (--socket PATH | --port N)\n"
     "                          (--plan FILE | stats | shutdown)\n"
     "  --plan FILE      plan to run; response rows stream to stdout\n"
     "  stats            print the service counters\n"
     "  shutdown         stop the server\n"
     "\nRetries the connect for ~2s, so 'serve &' then 'submit' works\n"
     "without sleeps.  Exits 1 when the server answers an error.\n",
     cmdSubmit, /*runsPlans=*/false, /*usesPlan=*/true},
    {"cache", "migrate into, or scrub & repair, a sharded store",
     "usage: refrint_cli cache migrate --store DIR [--cache PATH]\n"
     "       refrint_cli cache scrub   --store DIR [--repair]\n"
     "  --store DIR      the sharded store to import into / verify\n"
     "  --cache PATH     migrate: source cache file (default\n"
     "                   $REFRINT_CACHE or ./refrint_sweep_cache.csv);\n"
     "                   read, never modified\n"
     "  --repair         scrub: quarantine damaged lines to\n"
     "                   shard-NNN.bad and atomically rebuild each\n"
     "                   shard from its valid rows (duplicates\n"
     "                   compacted last-wins)\n"
     "\nMigrated rows are byte-identical to freshly simulated ones, so\n"
     "a follow-up 'sweep --store DIR' is all-warm.  'cache scrub'\n"
     "verifies every record's framing checksum, tells crash-torn\n"
     "tails from mid-file corruption, and exits 1 on unrepaired\n"
     "damage.\n",
     cmdCache},
    {"validate", "check a result corpus against the model invariants",
     "usage: refrint_cli validate (--store DIR | --cache PATH) "
     "[options]\n"
     "  --store DIR      sharded result store to validate\n"
     "  --cache PATH     legacy single-file cache to validate\n"
     "  --out FILE       write a machine-readable JSON report\n"
     "  --verbose        list every finding, not just the summary\n"
     "\nStreams every row of the corpus and checks row-local\n"
     "invariants (finite fields, the energy decomposition identity,\n"
     "latency percentile ladders, the refresh ceiling, the alternate\n"
     "backend's envelope), the analytic predictor's agreement\n"
     "envelope, and cross-row invariants (P.all refresh dominance,\n"
     "All >= Valid >= Dirty refresh ordering, energy monotone along\n"
     "the retention axis).  Exit codes: 0 clean, 1 violations or an\n"
     "unreadable corpus, 2 usage error.\n",
     cmdValidate},
    {"trace-record", "record a workload's reference stream to a file",
     "usage: refrint_cli trace-record --app NAME --out FILE\n"
     "  --refs N --seed S --cores N    recording parameters\n",
     cmdTraceRecord},
    {"trace-run", "simulate a recorded trace",
     "usage: refrint_cli trace-run --in FILE [run options]\n",
     cmdTraceRun},
    {"list", "list applications, policies and axes",
     "usage: refrint_cli list\n", cmdList},
    {"help", "show this index, or one command in detail",
     "usage: refrint_cli help [command]\n", cmdHelp},
};

const Command *
commandIndex()
{
    return kCommands;
}

std::size_t
commandCount()
{
    return sizeof(kCommands) / sizeof(kCommands[0]);
}

const Command *
findCommand(const std::string &name)
{
    for (std::size_t i = 0; i < commandCount(); ++i)
        if (name == kCommands[i].name)
            return &kCommands[i];
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printCommandIndex(stderr);
        return 2;
    }
    const Command *cmd = findCommand(argv[1]);
    if (cmd == nullptr) {
        std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
        printCommandIndex(stderr);
        return 2;
    }
    gActive = cmd;
    const Args a = parseArgs(argc, argv, 2);
    return cmd->run(a);
}
