/**
 * @file
 * refrint_cli — command-line front end for the Refrint simulator.
 *
 *   refrint_cli run --app fft --policy R.WB(32,32) --retention 50
 *                   [--refs N] [--seed S] [--sram] [--decay US]
 *                   [--ambient C] [--cores N] [--hybrid]
 *   refrint_cli sweep [--refs N] [--cores N] [--hybrid]
 *                                         reproduce the Table 5.4 sweep
 *   refrint_cli figures [--refs N]        print Figs. 6.1-6.4 + headline
 *   refrint_cli thermal-study [--app fft] [--ambients 45,65,85]
 *                   sweep the ambient-temperature scenario axis
 *   refrint_cli binning                   print Table 6.1 classification
 *   refrint_cli trace-record --app fft --out t.trc [--refs N] [--seed S]
 *   refrint_cli trace-run --in t.trc --policy P.all --retention 50
 *   refrint_cli list                      list applications and policies
 *
 * Every subcommand prints a normalized summary (against the matching
 * full-SRAM baseline where applicable).  Numeric arguments are parsed
 * strictly: "--refs 1e6" is an error, not a silent 1.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "harness/binning.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

namespace
{

using namespace refrint;

struct Args
{
    std::string app = "fft";
    std::string policy = "R.WB(32,32)";
    double retentionUs = 50.0;
    std::uint64_t refs = 120'000;
    std::uint64_t seed = 1;
    std::uint32_t cores = 16; ///< machine scale (4..64)
    bool hybrid = false;      ///< SRAM L1/L2 over the eDRAM LLC
    unsigned jobs = 0; ///< sweep workers; 0 = $REFRINT_JOBS or serial
    bool sram = false;
    double decayUs = 0.0;
    double ambientC = 0.0; ///< 0 = thermal subsystem off
    std::string ambients = "45,65,85"; ///< thermal-study axis
    std::string cache; ///< result cache; empty = $REFRINT_CACHE/default
    std::string in, out;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: refrint_cli <run|sweep|figures|thermal-study|binning|"
        "trace-record|trace-run|list> [options]\n"
        "  --app NAME --policy P --retention US --refs N --seed S\n"
        "  --jobs N --sram --decay US --ambient C --ambients C1,C2,...\n"
        "  --cores N --hybrid --cache PATH --in FILE --out FILE\n");
    std::exit(2);
}

/** Strict decimal integer argument, or exit with a pointed message. */
std::uint64_t
argU64(const char *flag, const char *v)
{
    std::uint64_t out = 0;
    if (!parseU64Strict(v, out)) {
        std::fprintf(stderr,
                     "%s wants a plain decimal integer, got '%s'\n",
                     flag, v);
        usage();
    }
    return out;
}

/** Strict finite floating-point argument, or exit with a message. */
double
argF64(const char *flag, const char *v)
{
    double out = 0;
    if (!parseF64Strict(v, out)) {
        std::fprintf(stderr, "%s wants a finite number, got '%s'\n",
                     flag, v);
        usage();
    }
    return out;
}

Args
parseArgs(int argc, char **argv, int first)
{
    Args a;
    for (int i = first; i < argc; ++i) {
        const std::string k = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (k == "--app")
            a.app = val();
        else if (k == "--policy")
            a.policy = val();
        else if (k == "--retention") {
            a.retentionUs = argF64("--retention", val());
            if (a.retentionUs <= 0) {
                std::fprintf(stderr, "--retention must be positive\n");
                usage();
            }
        }
        else if (k == "--refs")
            a.refs = argU64("--refs", val());
        else if (k == "--seed")
            a.seed = argU64("--seed", val());
        else if (k == "--jobs") {
            const std::uint64_t n = argU64("--jobs", val());
            if (n == 0 || n > 4096) {
                std::fprintf(stderr,
                             "--jobs wants an integer in [1, 4096]\n");
                usage();
            }
            a.jobs = static_cast<unsigned>(n);
        }
        else if (k == "--cores") {
            const std::uint64_t n = argU64("--cores", val());
            if (n < 4 || n > 64) {
                std::fprintf(stderr,
                             "--cores wants an integer in [4, 64]\n");
                usage();
            }
            a.cores = static_cast<std::uint32_t>(n);
        }
        else if (k == "--hybrid")
            a.hybrid = true;
        else if (k == "--sram")
            a.sram = true;
        else if (k == "--decay")
            a.decayUs = argF64("--decay", val());
        else if (k == "--ambient") {
            a.ambientC = argF64("--ambient", val());
            if (a.ambientC <= 0) {
                std::fprintf(stderr,
                             "--ambient wants a temperature in deg C "
                             "(> 0)\n");
                usage();
            }
        }
        else if (k == "--ambients")
            a.ambients = val();
        else if (k == "--cache")
            a.cache = val();
        else if (k == "--in")
            a.in = val();
        else if (k == "--out")
            a.out = val();
        else
            usage();
    }
    if (a.sram && a.hybrid) {
        std::fprintf(stderr, "--hybrid builds SRAM L1/L2 over an eDRAM "
                             "LLC; drop --sram\n");
        usage();
    }
    if (a.sram && a.ambientC > 0.0) {
        std::fprintf(stderr, "--ambient needs an eDRAM machine; drop "
                             "--sram (SRAM retention is unlimited)\n");
        usage();
    }
    if (a.decayUs > 0.0 && a.ambientC > 0.0) {
        std::fprintf(stderr, "--decay (SRAM cache-decay comparator) "
                             "and --ambient (eDRAM thermal) are "
                             "mutually exclusive\n");
        usage();
    }
    return a;
}

/** Parse the --ambients comma list into strictly valid temperatures. */
std::vector<double>
parseAmbients(const std::string &list)
{
    std::vector<double> out;
    std::string tok;
    std::stringstream ss(list);
    while (std::getline(ss, tok, ',')) {
        double v = 0;
        if (!parseF64Strict(tok.c_str(), v) || v <= 0) {
            std::fprintf(stderr,
                         "--ambients wants positive deg C values, got "
                         "'%s'\n",
                         tok.c_str());
            usage();
        }
        out.push_back(v);
    }
    if (out.empty()) {
        std::fprintf(stderr, "--ambients list is empty\n");
        usage();
    }
    return out;
}

/** Resolve the sweep cache path: --cache beats $REFRINT_CACHE. */
std::string
cachePathFor(const Args &a)
{
    return a.cache.empty() ? defaultCachePath() : a.cache;
}

MachineConfig
machineFor(const Args &a)
{
    if (a.sram && a.decayUs > 0.0)
        return MachineConfig::paperSramDecay(usToTicks(a.decayUs),
                                             a.cores);
    if (a.sram)
        return MachineConfig::paperSram(a.cores);
    MachineConfig cfg =
        a.hybrid ? MachineConfig::paperHybrid(parsePolicy(a.policy),
                                              usToTicks(a.retentionUs),
                                              a.cores)
                 : MachineConfig::paperEdram(parsePolicy(a.policy),
                                             usToTicks(a.retentionUs),
                                             a.cores);
    if (a.ambientC > 0.0) {
        cfg.thermal.enabled = true;
        cfg.thermal.ambientC = a.ambientC;
    }
    return cfg;
}

void
printRun(const Workload &app, const Args &a)
{
    SimParams sim;
    sim.refsPerCore = a.refs;
    sim.seed = a.seed;

    const RunResult base =
        runOnce(MachineConfig::paperSram(a.cores), app, sim);
    const MachineConfig cfg = machineFor(a);
    const RunResult r =
        a.sram && a.decayUs == 0.0 ? base : runOnce(cfg, app, sim);
    const NormalizedResult n = normalize(r, base);

    std::printf("app            %s (class %d)\n", app.name(),
                app.paperClass());
    std::printf("machine        %s%s", cfg.techSummary().c_str(),
                cfg.decay.enabled ? "+decay" : "");
    if (cfg.anyEdram())
        std::printf("  policy %s  retention %.0f us",
                    cfg.llc().policy.name().c_str(), a.retentionUs);
    if (cfg.numCores != 16)
        std::printf("  cores %u (%ux%u torus)", cfg.numCores,
                    cfg.torusDim, cfg.torusDim);
    std::printf("\n");
    if (cfg.thermal.enabled)
        std::printf("thermal        ambient %.1f C  peak %.1f C  "
                    "(retention x%.2f at peak)\n",
                    r.ambientC, r.maxTempC,
                    cfg.retention.thermal.factorAt(r.maxTempC));
    std::printf("exec time      %.3f ms  (%.3fx of SRAM)\n",
                ticksToSeconds(r.execTicks) * 1e3, n.time);
    std::printf("mem energy     %.3f mJ  (%.3fx of SRAM)\n",
                r.energy.memTotal() * 1e3, n.memEnergy);
    std::printf("sys energy     %.3f mJ  (%.3fx of SRAM)\n",
                r.energy.systemTotal() * 1e3, n.sysEnergy);
    std::printf("  dynamic/leak/refresh/dram  %.3f / %.3f / %.3f / %.3f"
                "  (of SRAM mem energy)\n",
                n.dynamic, n.leakage, n.refresh, n.dram);
    std::printf("L3 misses      %llu    DRAM accesses %llu\n",
                static_cast<unsigned long long>(r.counts.l3Misses),
                static_cast<unsigned long long>(r.counts.dramAccesses));
    std::printf("refreshes      L1 %llu  L2 %llu  L3 %llu\n",
                static_cast<unsigned long long>(r.counts.l1Refreshes),
                static_cast<unsigned long long>(r.counts.l2Refreshes),
                static_cast<unsigned long long>(r.counts.l3Refreshes));
}

int
cmdRun(const Args &a)
{
    const Workload *app = findWorkload(a.app);
    if (app == nullptr) {
        std::fprintf(stderr, "unknown application '%s' (try 'list')\n",
                     a.app.c_str());
        return 1;
    }
    printRun(*app, a);
    return 0;
}

int
cmdSweepOrFigures(const Args &a, bool figures)
{
    SweepSpec spec;
    spec.sim.refsPerCore = a.refs;
    spec.jobs = a.jobs;
    if (a.cores != 16 || a.hybrid) {
        spec.machines = {MachineAxis{a.cores, a.hybrid}};
        std::printf("machine: %u cores (%s)\n", a.cores,
                    a.hybrid ? "hybrid SRAM L1/L2 + eDRAM LLC"
                             : "uniform tech");
    }
    const SweepResult s = runSweep(std::move(spec), cachePathFor(a));
    if (figures) {
        printFig61(s);
        for (int cls : {1, 2, 3, 0})
            printFig62(s, cls);
        printFig63(s, 1);
        printFig63(s, 0);
        printFig64(s, 1);
        printFig64(s, 0);
    }
    printHeadline(s);
    return 0;
}

int
cmdBinning()
{
    printBinning();
    return 0;
}

/**
 * thermal-study: sweep the ambient-temperature axis for the paper's
 * headline policy pair and show how the refresh/energy trade-off moves
 * with die temperature — the scenario the isothermal evaluation cannot
 * express.  Uses the shared result cache (ambient-keyed rows) and the
 * parallel sweep engine, so repeated studies are warm and --jobs N is
 * bit-identical to serial.
 */
int
cmdThermalStudy(const Args &a)
{
    const Workload *app = findWorkload(a.app);
    if (app == nullptr) {
        std::fprintf(stderr, "unknown application '%s' (try 'list')\n",
                     a.app.c_str());
        return 1;
    }
    SweepSpec spec;
    spec.apps = {app};
    spec.retentions = {usToTicks(a.retentionUs)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.ambients = parseAmbients(a.ambients);
    spec.sim.refsPerCore = a.refs;
    spec.sim.seed = a.seed;
    spec.jobs = a.jobs;
    if (a.cores != 16 || a.hybrid)
        spec.machines = {MachineAxis{a.cores, a.hybrid}};
    const SweepResult s = runSweep(std::move(spec), cachePathFor(a));
    printThermalStudy(s, app->name(), a.retentionUs);
    return 0;
}

int
cmdTraceRecord(const Args &a)
{
    const Workload *app = findWorkload(a.app);
    if (app == nullptr || a.out.empty()) {
        std::fprintf(stderr, "trace-record needs --app and --out\n");
        return 1;
    }
    const Trace t = recordTrace(*app, a.cores, a.refs, a.seed);
    if (!saveTrace(t, a.out))
        return 1;
    std::printf("recorded %llu refs (%u cores) from %s to %s\n",
                static_cast<unsigned long long>(t.totalRefs()),
                t.numCores(), app->name(), a.out.c_str());
    return 0;
}

int
cmdTraceRun(const Args &a)
{
    if (a.in.empty()) {
        std::fprintf(stderr, "trace-run needs --in\n");
        return 1;
    }
    TraceWorkload app(loadTrace(a.in), a.in);
    printRun(app, a);
    return 0;
}

int
cmdList()
{
    std::printf("applications (Table 5.3 / binning of Table 6.1):\n");
    for (const Workload *w : paperWorkloads())
        std::printf("  %-14s class %d\n", w->name(), w->paperClass());
    std::printf("policies (Table 5.4): ");
    for (const RefreshPolicy &p : paperPolicySweep())
        std::printf("%s ", p.name().c_str());
    std::printf("\n  plus the SmartRefresh comparator: S.valid, "
                "S.WB(n,m), ...\n");
    std::printf("retentions: 50, 100, 200 (us)\n");
    std::printf("ambients (thermal-study / run --ambient): deg C, "
                "default 45,65,85\n");
    std::printf("machines: --cores 4..64 (square torus derived), "
                "--hybrid (SRAM L1/L2 + eDRAM L3)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    const Args a = parseArgs(argc, argv, 2);

    if (cmd == "run")
        return cmdRun(a);
    if (cmd == "sweep")
        return cmdSweepOrFigures(a, false);
    if (cmd == "figures")
        return cmdSweepOrFigures(a, true);
    if (cmd == "thermal-study")
        return cmdThermalStudy(a);
    if (cmd == "binning")
        return cmdBinning();
    if (cmd == "trace-record")
        return cmdTraceRecord(a);
    if (cmd == "trace-run")
        return cmdTraceRun(a);
    if (cmd == "list")
        return cmdList();
    usage();
}
